//! Concurrent query serving: a worker pool over one shared read path.
//!
//! The paper positions Airphant as a cloud index for read-oriented
//! workloads under "heavy traffic from millions of users": Searchers are
//! lightweight and stateless, so a serving node scales by pointing many
//! query threads at one shared [`SearchEngine`] (usually a
//! [`Searcher`](crate::Searcher) over a shared byte-budgeted
//! [`CachedStore`](airphant_storage::CachedStore)). [`QueryServer`] is
//! that serving node:
//!
//! * a **fixed worker pool** drains a **bounded submission queue**; when
//!   the queue is full, [`QueryServer::try_submit`] rejects with the typed
//!   [`SubmitError::QueueFull`] (backpressure instead of unbounded memory);
//! * an optional **per-query deadline** on the simulated clock: queries
//!   whose end-to-end simulated latency exceeds it surface
//!   [`StorageError::Timeout`] to the caller and count as timed out;
//! * aggregate [`ServerStats`]: throughput, tail latency, cache hit rate,
//!   rejected/timed-out counts;
//! * a **swappable engine slot**: [`QueryServer::refresh`] installs a
//!   fresh engine (e.g. a reopened
//!   [`SegmentedSearcher`](crate::SegmentedSearcher) after an append or
//!   compaction) with zero downtime — in-flight queries finish on the
//!   generation they started on, later queries see the new one.
//!
//! ## Throughput on the virtual clock
//!
//! Storage latencies in this reproduction are *data, not sleeps* (see
//! `airphant-storage`), so serving throughput is also reported on the
//! simulated clock: the server replays the completed queries' simulated
//! latencies through `workers` model servers (each serving one query at a
//! time, every finished query immediately replaced by the next — a closed
//! loop) and derives QPS from that makespan. This keeps throughput
//! numbers deterministic under a seed and independent of the host's core
//! count; wall-clock QPS is reported alongside.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats, Priority};
use crate::engine::{SearchEngine, StagedEngine};
use crate::error::AirphantError;
use crate::plan::{
    complete_documents, complete_postings, plan_documents, plan_postings, DocPlan, PostingsPlan,
    SegmentAtomPostings,
};
use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::Result;
use airphant_storage::{
    BatchFetch, ObjectStore, PhaseKind, QueryTrace, RangeRequest, ReplicatedStore,
    ReplicationStats, SchedulerStats, SimDuration, StorageError,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing and policy knobs for a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (each runs whole queries).
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue rejects.
    pub queue_capacity: usize,
    /// Per-query deadline on the simulated clock; `None` disables it.
    pub deadline: Option<SimDuration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            deadline: None,
        }
    }
}

impl ServerConfig {
    /// Default configuration (4 workers, queue of 64, no deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the bounded queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-query simulated-clock deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Typed rejection from [`QueryServer::try_submit`] or the async
/// admission path ([`AsyncQueryServer::try_submit`]).
///
/// `#[non_exhaustive]`: match with a wildcard arm — new rejection
/// variants are additive, not breaking (see the stability contract in
/// the crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded submission queue is full — shed load or retry later.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// Admission control shed this query (overload, quota, or deadline
    /// infeasibility). Always typed — never a panic or a silent drop.
    Overloaded {
        /// Priority class of the shed query.
        class: Priority,
        /// Hint: how long until the shedding condition is expected to
        /// clear (virtual time).
        retry_after: SimDuration,
    },
    /// The server has shut down and accepts no further queries.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::Overloaded { class, retry_after } => {
                write!(f, "shed {class}-priority query (retry after {retry_after})")
            }
            SubmitError::ShutDown => write!(f, "query server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A pending query's completion handle.
pub struct Ticket {
    rx: Receiver<Result<SearchResult>>,
}

impl Ticket {
    /// Block until the query completes and return its result. Deadline
    /// violations arrive as [`StorageError::Timeout`].
    pub fn wait(self) -> Result<SearchResult> {
        self.rx
            .recv()
            .unwrap_or_else(|_| panic!("query server worker dropped the reply channel"))
    }
}

struct Job {
    query: Query,
    opts: QueryOptions,
    reply: SyncSender<Result<SearchResult>>,
}

/// State shared between the handle and the worker threads.
struct Shared {
    /// The swappable engine slot: queries clone the current `Arc` under a
    /// read lock and execute unlocked, so [`QueryServer::refresh`] can
    /// install a fresh engine (a reopened
    /// [`SegmentedSearcher`](crate::SegmentedSearcher) after an append or
    /// compaction) with zero downtime — in-flight queries finish on the
    /// generation they started on.
    engine: RwLock<Arc<dyn SearchEngine>>,
    deadline: Option<SimDuration>,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    refreshes: AtomicU64,
    /// Per-completed-query `(lookup wait, end-to-end)` simulated samples.
    samples: Mutex<Vec<(SimDuration, SimDuration)>>,
}

impl Shared {
    /// Snapshot the current engine (one atomic refcount bump; the write
    /// lock is only ever held for the pointer swap in `refresh`).
    fn engine(&self) -> Arc<dyn SearchEngine> {
        self.engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn serve(&self, job: Job) {
        let engine = self.engine();
        // Contain engine panics: the worker must survive (a 1-worker pool
        // would otherwise stop serving and strand every queued ticket)
        // and the caller gets an error, not a dropped reply channel.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute(&job.query, &job.opts)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(AirphantError::Storage(StorageError::Io(
                std::io::Error::other(format!("query execution panicked: {msg}")),
            )))
        });
        let reply = match outcome {
            Ok(result) => {
                let total = result.trace.total();
                // The worker spent this simulated time whether or not the
                // query beat its deadline, so timed-out queries stay in
                // the samples: percentiles report the true served tail
                // (not censored at the deadline) and the closed-loop
                // makespan charges the wasted service time.
                self.samples
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((result.trace.wait(), total));
                match self.deadline {
                    Some(deadline) if total > deadline => {
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                        Err(AirphantError::Storage(StorageError::Timeout {
                            name: format!("query missed its {deadline} deadline (took {total})"),
                        }))
                    }
                    _ => {
                        self.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(result)
                    }
                }
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        };
        // The ticket may have been dropped; serving already happened.
        let _ = job.reply.send(reply);
    }
}

/// Aggregate serving statistics (see the module docs for the throughput
/// model).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Worker-pool size the numbers are modeled for.
    pub workers: usize,
    /// Queries answered successfully.
    pub completed: u64,
    /// Submissions rejected by backpressure ([`SubmitError::QueueFull`]).
    pub rejected: u64,
    /// Queries past the simulated deadline.
    pub timed_out: u64,
    /// Queries that failed with an engine/storage error.
    pub failed: u64,
    /// Engine swaps installed via [`QueryServer::refresh`].
    pub refreshes: u64,
    /// Simulated closed-loop makespan of every *served* query — including
    /// timed-out ones, whose service time the workers still spent.
    pub sim_makespan: SimDuration,
    /// Successfully completed queries per simulated second (timed-out
    /// service time counts against the makespan but not the numerator).
    pub qps_sim: f64,
    /// Completed queries per wall-clock second (host-dependent).
    pub qps_wall: f64,
    /// Median simulated lookup wait, ms (all served queries).
    pub wait_p50_ms: f64,
    /// 95th-percentile simulated lookup wait, ms.
    pub wait_p95_ms: f64,
    /// 99th-percentile simulated lookup wait, ms.
    pub wait_p99_ms: f64,
    /// Median simulated end-to-end latency, ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile simulated end-to-end latency, ms.
    pub latency_p95_ms: f64,
    /// 99th-percentile simulated end-to-end latency, ms.
    pub latency_p99_ms: f64,
    /// `(hits, misses)` of the shared cache, when one is attached.
    pub cache: Option<(u64, u64)>,
    /// Counters of the shared I/O scheduler
    /// ([`CoalescingStore`](airphant_storage::CoalescingStore)), when one
    /// is attached: merged ranges, fused cross-query batches, bytes saved.
    pub scheduler: Option<SchedulerStats>,
    /// Peak concurrently in-flight queries. For the sync worker pool this
    /// is bounded by `workers`; the async core reports the true peak of
    /// suspended queries (tens of thousands over a handful of threads).
    pub peak_in_flight: u64,
    /// Hedged duplicate storage batches dispatched
    /// ([`AsyncQueryServer`] only; 0 for the sync pool).
    pub hedges: u64,
    /// Hedges whose duplicate beat the original request
    /// ([`AsyncQueryServer`] only; 0 for the sync pool).
    pub hedge_wins: u64,
    /// Primary (non-hedge) storage batches dispatched — the denominator
    /// the hedge budget is enforced against: `hedges <= budget_fraction *
    /// primary_dispatches` always holds ([`AsyncQueryServer`] only; 0 for
    /// the sync pool).
    pub primary_dispatches: u64,
    /// Hedges re-dispatched to the next-nearest *region* of an attached
    /// [`ReplicatedStore`] (a subset of `hedges`;
    /// [`AsyncQueryServer::with_region_backend`] only, 0 otherwise).
    pub region_hedges: u64,
    /// Replication counters of the attached [`ReplicatedStore`] —
    /// per-region read routing, demotions, recoveries — when a region
    /// backend is attached ([`AsyncQueryServer`] only; `None` otherwise).
    pub replication: Option<ReplicationStats>,
    /// Admission-control counters ([`AsyncQueryServer`] only; `None` for
    /// the sync pool, whose backpressure is the bounded queue).
    pub admission: Option<AdmissionStats>,
}

impl ServerStats {
    /// Shared-cache hit rate in `[0, 1]`, when a cache is attached and saw
    /// traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.and_then(|(h, m)| {
            let total = h + m;
            (total > 0).then(|| h as f64 / total as f64)
        })
    }
}

/// Nearest-rank percentile of an ascending sample, `q ∈ [0, 1]`.
fn percentile(sorted: &[SimDuration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_millis_f64()
}

/// Closed-loop makespan of serving `latencies` on `workers` model servers:
/// each query goes to the earliest-free server, in completion order.
fn closed_loop_makespan(latencies: &[SimDuration], workers: usize) -> SimDuration {
    let workers = workers.max(1);
    // Min-heap of server free times (BinaryHeap is a max-heap: reverse).
    let mut free: BinaryHeap<std::cmp::Reverse<SimDuration>> = (0..workers)
        .map(|_| std::cmp::Reverse(SimDuration::ZERO))
        .collect();
    let mut makespan = SimDuration::ZERO;
    for &lat in latencies {
        let std::cmp::Reverse(t) = free.pop().expect("workers >= 1");
        let done = t + lat;
        makespan = makespan.max(done);
        free.push(std::cmp::Reverse(done));
    }
    makespan
}

/// A fixed pool of query workers over one shared engine.
///
/// Dropping the server shuts it down: the queue closes and the workers are
/// joined (pending queries are still served first).
pub struct QueryServer {
    shared: Arc<Shared>,
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    started: Instant,
    cache_stats: Option<Box<dyn Fn() -> (u64, u64) + Send + Sync>>,
    scheduler_stats: Option<Box<dyn Fn() -> SchedulerStats + Send + Sync>>,
    config_workers: usize,
}

impl QueryServer {
    /// Spawn the worker pool over `engine`.
    pub fn start(engine: Arc<dyn SearchEngine>, config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "a server needs at least one worker");
        assert!(config.queue_capacity >= 1, "queue capacity must be >= 1");
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            deadline: config.deadline,
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("airphant-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue; the
                        // query itself runs unlocked, so workers overlap.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => shared.serve(job),
                            Err(_) => return, // queue closed: shut down
                        }
                    })
                    .expect("spawn query worker")
            })
            .collect();
        QueryServer {
            shared,
            sender: Some(tx),
            workers,
            queue_capacity: config.queue_capacity,
            started: Instant::now(),
            cache_stats: None,
            scheduler_stats: None,
            config_workers: config.workers,
        }
    }

    /// Attach a shared-cache counter source (e.g.
    /// `move || cache.hit_stats()`) so [`ServerStats::cache`] is populated.
    pub fn with_cache_stats(
        mut self,
        stats: impl Fn() -> (u64, u64) + Send + Sync + 'static,
    ) -> Self {
        self.cache_stats = Some(Box::new(stats));
        self
    }

    /// Attach a shared I/O-scheduler counter source (e.g.
    /// `move || scheduler.stats()`) so [`ServerStats::scheduler`] is
    /// populated.
    pub fn with_scheduler_stats(
        mut self,
        stats: impl Fn() -> SchedulerStats + Send + Sync + 'static,
    ) -> Self {
        self.scheduler_stats = Some(Box::new(stats));
        self
    }

    /// Swap in a fresh engine with zero downtime: queries already
    /// executing finish on the engine they started with; every query
    /// dequeued after this call runs on `engine`. This is the live-index
    /// refresh hook — after a
    /// [`SegmentManager::append`](crate::SegmentManager::append) or a
    /// [`Compactor::compact`](crate::Compactor::compact), reopen the
    /// segmented searcher and install it here instead of restarting the
    /// server.
    pub fn refresh(&self, engine: Arc<dyn SearchEngine>) {
        *self
            .shared
            .engine
            .write()
            .unwrap_or_else(|e| e.into_inner()) = engine;
        self.shared.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// The engine currently serving queries (the latest
    /// [`QueryServer::refresh`], or the one passed to
    /// [`QueryServer::start`]).
    pub fn engine(&self) -> Arc<dyn SearchEngine> {
        self.shared.engine()
    }

    /// Enqueue a query without blocking. A full queue rejects with
    /// [`SubmitError::QueueFull`] and counts toward
    /// [`ServerStats::rejected`].
    pub fn try_submit(
        &self,
        query: Query,
        opts: QueryOptions,
    ) -> std::result::Result<Ticket, SubmitError> {
        let (reply, rx) = sync_channel(1);
        let job = Job { query, opts, reply };
        let sender = self.sender.as_ref().ok_or(SubmitError::ShutDown)?;
        match sender.try_send(job) {
            Ok(()) => Ok(Ticket { rx }),
            Err(TrySendError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull {
                    capacity: self.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShutDown),
        }
    }

    /// Enqueue a query, blocking while the queue is full (closed-loop
    /// submission: the caller inherits the backpressure).
    pub fn submit(
        &self,
        query: Query,
        opts: QueryOptions,
    ) -> std::result::Result<Ticket, SubmitError> {
        let (reply, rx) = sync_channel(1);
        let job = Job { query, opts, reply };
        let sender = self.sender.as_ref().ok_or(SubmitError::ShutDown)?;
        sender.send(job).map_err(|_| SubmitError::ShutDown)?;
        Ok(Ticket { rx })
    }

    /// Submit and wait: the blocking convenience used by tests and the
    /// CLI.
    pub fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        self.submit(query.clone(), opts.clone())
            .expect("server alive while the handle is held")
            .wait()
    }

    /// Snapshot the aggregate serving statistics.
    pub fn stats(&self) -> ServerStats {
        let samples = self
            .shared
            .samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut waits: Vec<SimDuration> = samples.iter().map(|&(w, _)| w).collect();
        let mut totals: Vec<SimDuration> = samples.iter().map(|&(_, t)| t).collect();
        waits.sort();
        totals.sort();
        let completed = self.shared.completed.load(Ordering::Relaxed);
        let sim_makespan = closed_loop_makespan(&totals, self.config_workers);
        let sim_secs = sim_makespan.as_secs_f64();
        let wall_secs = self.started.elapsed().as_secs_f64();
        ServerStats {
            workers: self.config_workers,
            completed,
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            refreshes: self.shared.refreshes.load(Ordering::Relaxed),
            sim_makespan,
            qps_sim: if sim_secs > 0.0 {
                completed as f64 / sim_secs
            } else {
                0.0
            },
            qps_wall: if wall_secs > 0.0 {
                completed as f64 / wall_secs
            } else {
                0.0
            },
            wait_p50_ms: percentile(&waits, 0.50),
            wait_p95_ms: percentile(&waits, 0.95),
            wait_p99_ms: percentile(&waits, 0.99),
            latency_p50_ms: percentile(&totals, 0.50),
            latency_p95_ms: percentile(&totals, 0.95),
            latency_p99_ms: percentile(&totals, 0.99),
            cache: self.cache_stats.as_ref().map(|f| f()),
            scheduler: self.scheduler_stats.as_ref().map(|f| f()),
            peak_in_flight: self.config_workers as u64,
            hedges: 0,
            hedge_wins: 0,
            primary_dispatches: 0,
            region_hedges: 0,
            replication: None,
            admission: None,
        }
    }

    /// Drain the queue, stop the workers, and return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        self.sender.take(); // close the queue: workers drain then exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.join_workers();
    }
}

// The server handle itself can be shared (e.g. one handle per frontend
// thread submitting into the same pool).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryServer>();
    assert_send_sync::<ServerStats>();
    assert_send_sync::<AsyncQueryServer>();
};

// ---------------------------------------------------------------------------
// Async admission-controlled serving core
// ---------------------------------------------------------------------------

/// Hedged-request policy for the [`AsyncQueryServer`].
///
/// After a storage batch has been in flight longer than the observed
/// `percentile` of recent batch latencies, a duplicate of the same batch
/// is dispatched against the configured hedge backend and the *first*
/// response wins; the loser's completion event is invalidated
/// (cancel-by-ignore — object stores have no cancel RPC, so the loser
/// simply drains). Hedges are bounded: at most `budget_fraction` of all
/// dispatched batches may be hedges, so tail-cutting cannot double the
/// backend load.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Latency percentile (in `(0, 1)`) after which a batch is hedged.
    pub percentile: f64,
    /// Observed completions required before the threshold engages.
    pub min_samples: usize,
    /// Max fraction of dispatched batches that may be hedges.
    pub budget_fraction: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            percentile: 0.95,
            min_samples: 64,
            budget_fraction: 0.05,
        }
    }
}

/// Sizing and policy knobs for an [`AsyncQueryServer`].
#[derive(Debug, Clone)]
pub struct AsyncServerConfig {
    /// Executor OS threads processing the event loop. `0` means no
    /// background threads: the caller pumps events via
    /// [`AsyncQueryServer::drain`] (fully deterministic — used by the
    /// benches and tests).
    pub executor_threads: usize,
    /// Modeled backend concurrency: how many storage batches the cloud
    /// store serves at once on the virtual clock (the batch-granularity
    /// analog of the sync server's closed-loop model servers). Excess
    /// batches queue in virtual time. `0` disables the model
    /// (uncontended backend).
    pub storage_slots: usize,
    /// Per-query deadline on the *service* time (storage wait + download
    /// + compute, same meaning as the sync server); `None` disables it.
    pub deadline: Option<SimDuration>,
    /// Admission control: priority watermarks, per-tenant quotas,
    /// deadline-aware shedding.
    pub admission: AdmissionConfig,
    /// Hedged-request policy; `None` disables hedging. Hedging also
    /// requires a backend via [`AsyncQueryServer::with_hedge_backend`].
    pub hedge: Option<HedgeConfig>,
}

impl Default for AsyncServerConfig {
    fn default() -> Self {
        AsyncServerConfig {
            executor_threads: 4,
            storage_slots: 64,
            deadline: None,
            admission: AdmissionConfig::default(),
            hedge: None,
        }
    }
}

impl AsyncServerConfig {
    /// Default configuration (4 executor threads, 64 storage slots, no
    /// deadline, default admission, no hedging).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the executor thread count (`0` = caller-pumped).
    pub fn with_executor_threads(mut self, threads: usize) -> Self {
        self.executor_threads = threads;
        self
    }

    /// Set the modeled backend concurrency.
    pub fn with_storage_slots(mut self, slots: usize) -> Self {
        self.storage_slots = slots;
        self
    }

    /// Set the per-query service-time deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the admission-control configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Enable hedged requests with the given policy.
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }
}

/// Per-submission routing metadata for the async server.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Priority class ([`Priority::Normal`] by default).
    pub class: Priority,
    /// Tenant for quota accounting; `None` is exempt from quotas.
    pub tenant: Option<String>,
    /// Virtual arrival time; `None` arrives "now". Arrivals in the past
    /// are clamped to the current virtual clock.
    pub arrival: Option<SimDuration>,
}

impl Default for SubmitSpec {
    fn default() -> Self {
        SubmitSpec {
            class: Priority::Normal,
            tenant: None,
            arrival: None,
        }
    }
}

impl SubmitSpec {
    /// A Normal-priority, quota-exempt submission arriving now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the priority class.
    pub fn with_class(mut self, class: Priority) -> Self {
        self.class = class;
        self
    }

    /// Set the quota tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Set the virtual arrival time (open-loop workload generation).
    pub fn at(mut self, arrival: SimDuration) -> Self {
        self.arrival = Some(arrival);
        self
    }
}

/// Why an async query did not produce a [`SearchResult`].
#[derive(Debug)]
pub enum ServeError {
    /// Admission control shed the query (typed, with a retry hint).
    Rejected(SubmitError),
    /// The engine or storage failed, or the deadline was exceeded
    /// ([`StorageError::Timeout`]).
    Failed(AirphantError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "rejected: {e}"),
            ServeError::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Outcome of one async query, with its virtual-clock timing.
#[derive(Debug)]
pub struct QueryResponse {
    /// The search result, or the typed reason it was not produced.
    pub result: std::result::Result<SearchResult, ServeError>,
    /// Virtual time the terminal event fired.
    pub finished_at: SimDuration,
    /// End-to-end virtual time from arrival to completion (queueing +
    /// storage; the wait the p99 SLO is measured over).
    pub sojourn: SimDuration,
}

/// Completion handle for an async submission.
#[derive(Debug)]
pub struct AsyncTicket {
    rx: Receiver<QueryResponse>,
}

impl AsyncTicket {
    /// Block until the query reaches a terminal state. With
    /// `executor_threads == 0` the caller must pump
    /// [`AsyncQueryServer::drain`] first or this blocks forever.
    pub fn wait(self) -> QueryResponse {
        self.rx
            .recv()
            .unwrap_or_else(|_| panic!("async server dropped the reply channel"))
    }
}

/// Explicit lifecycle of one in-flight query (the issue's
/// Submitted → Planning → AwaitingStorage → Merging → Done machine).
/// `Planning` and `Merging` are the synchronous stretches an executor
/// thread runs between suspension points; a query only *waits* in
/// `Submitted` (for its arrival event) and `AwaitingStorage` (for its
/// batch's virtual completion).
#[derive(Debug, Clone, Copy, PartialEq)]
enum FlightStage {
    /// Queued for its arrival event.
    Submitted,
    /// An executor is resolving atoms and planning the next batch.
    Planning,
    /// Suspended: a storage batch (postings or documents) is in flight
    /// on the virtual clock. No OS thread is held.
    AwaitingStorage(PhaseKind),
    /// An executor is decoding/merging a completed batch.
    Merging,
    /// Terminal: the reply has been delivered.
    Done,
}

/// A storage batch in flight on the virtual clock.
struct PendingBatch {
    kind: PhaseKind,
    /// The dispatched requests (kept for hedge re-dispatch).
    requests: Vec<RangeRequest>,
    /// The fetched bytes of the *original* dispatch. A winning hedge
    /// only shortens the timing: blobs are immutable, so the duplicate
    /// returns identical bytes and reusing the originals keeps results
    /// byte-for-byte equal to the sync path.
    batch: BatchFetch,
    /// Winning first-byte wait (hedge may shrink it).
    wait: SimDuration,
    /// Winning transfer time.
    download: SimDuration,
    /// Winning service latency (`wait + download`, excluding slot queueing).
    latency: SimDuration,
    /// Virtual completion time of the winning request.
    completes_at: SimDuration,
    /// A hedge was already dispatched (or decided against) for this batch.
    hedged: bool,
}

/// One query's full state while it lives in the async core.
struct Flight {
    query: Query,
    opts: QueryOptions,
    class: Priority,
    tenant: Option<String>,
    arrival: SimDuration,
    /// Admission already granted (sync `try_submit` path).
    admitted: bool,
    stage: FlightStage,
    /// Bumped when a hedge wins so the loser's completion event is
    /// recognized as stale and ignored.
    epoch: u32,
    trace: QueryTrace,
    atoms: Vec<String>,
    maps: Option<SegmentAtomPostings>,
    postings_plan: Option<PostingsPlan>,
    doc_plan: Option<DocPlan>,
    pending: Option<PendingBatch>,
    reply: SyncSender<QueryResponse>,
}

/// A scheduled event on the virtual clock. `seq` breaks ties in FIFO
/// order so equal-time events process in schedule order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct EventEntry {
    at: SimDuration,
    seq: u64,
    action: EventAction,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum EventAction {
    /// The query's virtual arrival: admission (if deferred) + planning.
    Arrive { id: u64 },
    /// A storage batch completed on the virtual clock.
    StorageDone { id: u64, epoch: u32 },
    /// The hedge timer for a possibly-straggling batch fired.
    HedgeFire { id: u64, epoch: u32 },
}

/// Recent-batch-latency ring size for the hedge threshold.
const HEDGE_RING: usize = 512;
/// Recompute the hedge threshold every this many observed completions.
const HEDGE_RECOMPUTE_EVERY: usize = 32;

/// Event-loop state under the scheduler lock.
struct AsyncCore {
    /// The virtual clock: advances to each popped event's time.
    now: SimDuration,
    seq: u64,
    next_id: u64,
    events: BinaryHeap<Reverse<EventEntry>>,
    flights: HashMap<u64, Flight>,
    /// Flights currently checked out by an executor thread (their events
    /// are momentarily absent from both `events` and `flights`).
    busy: usize,
    shutting_down: bool,
    admission: AdmissionController,
    /// Min-heap of modeled backend-slot free times.
    slots: BinaryHeap<Reverse<SimDuration>>,
    peak_in_flight: u64,
    hedges: u64,
    hedge_wins: u64,
    /// Hedges re-dispatched via the region backend's next-nearest
    /// replica (a subset of `hedges`).
    region_hedges: u64,
    /// Total storage batches dispatched, primaries and hedges alike.
    dispatched: u64,
    /// Primary (non-hedge) batches dispatched — the hedge-budget
    /// denominator. Counting hedges themselves in the denominator would
    /// let each admitted hedge enlarge the budget for the next one,
    /// inflating the effective fraction past the configured one.
    primary_dispatches: u64,
    latency_ring: Vec<SimDuration>,
    ring_pos: usize,
    since_recompute: usize,
    hedge_threshold: Option<SimDuration>,
    // Terminal counters and samples (mirroring the sync server).
    completed: u64,
    rejected: u64,
    timed_out: u64,
    failed: u64,
    /// `(service wait, service total)` per served query.
    samples: Vec<(SimDuration, SimDuration)>,
    /// End-to-end sojourn (arrival → terminal event) per served query.
    sojourns: Vec<SimDuration>,
    first_arrival: Option<SimDuration>,
    last_finish: SimDuration,
}

impl AsyncCore {
    fn push_event(&mut self, at: SimDuration, action: EventAction) {
        self.seq += 1;
        self.events.push(Reverse(EventEntry {
            at,
            seq: self.seq,
            action,
        }));
    }

    /// Acquire a modeled backend slot at `at` for a batch of `latency`:
    /// the batch starts when the earliest slot frees (queueing in virtual
    /// time) and the slot is busy until it completes. Zero-latency
    /// batches (cache hits) bypass the model entirely.
    fn acquire_slot(
        &mut self,
        at: SimDuration,
        latency: SimDuration,
    ) -> (SimDuration, SimDuration) {
        if latency == SimDuration::ZERO || self.slots.is_empty() {
            return (at, at + latency);
        }
        let Reverse(free) = self.slots.pop().expect("slots non-empty");
        let start = free.max(at);
        let completes = start + latency;
        self.slots.push(Reverse(completes));
        (start, completes)
    }

    /// Fold one completed batch latency into the hedge-threshold ring.
    fn observe_batch_latency(&mut self, cfg: Option<&HedgeConfig>, latency: SimDuration) {
        let Some(cfg) = cfg else { return };
        if self.latency_ring.len() < HEDGE_RING {
            self.latency_ring.push(latency);
        } else {
            self.latency_ring[self.ring_pos] = latency;
            self.ring_pos = (self.ring_pos + 1) % HEDGE_RING;
        }
        self.since_recompute += 1;
        if self.latency_ring.len() >= cfg.min_samples.max(1)
            && (self.hedge_threshold.is_none() || self.since_recompute >= HEDGE_RECOMPUTE_EVERY)
        {
            self.since_recompute = 0;
            let mut sorted = self.latency_ring.clone();
            sorted.sort();
            let rank =
                ((cfg.percentile * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            self.hedge_threshold = Some(sorted[rank - 1]);
        }
    }
}

/// State shared between the handle and the executor threads.
struct AsyncShared {
    core: Mutex<AsyncCore>,
    cv: Condvar,
    engine: Arc<dyn StagedEngine>,
    config: AsyncServerConfig,
    /// Below-cache backend for hedge re-dispatch. Hedges must bypass the
    /// shared cache: the original fetch already populated it, so a hedge
    /// through the cached path would win instantly — an artifact of the
    /// wall-clock/virtual-clock split, not a modeled speedup.
    hedge_store: RwLock<Option<Arc<dyn ObjectStore>>>,
    /// Multi-region backend for *region-aware* hedging: when set, hedge
    /// re-dispatch goes to [`ReplicatedStore::hedge_target`] (the
    /// next-nearest healthy region) instead of the generic `hedge_store`.
    /// Blobs are immutable, so the other region's bytes are identical and
    /// results stay byte-for-byte equal to the unhedged path.
    region_backend: RwLock<Option<Arc<ReplicatedStore>>>,
}

impl AsyncShared {
    fn lock_core(&self) -> std::sync::MutexGuard<'_, AsyncCore> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// What a planning/merging stretch produced: either the query is done,
/// or a batch was dispatched and the query suspends, or it failed.
enum StepOutcome {
    Done(SearchResult),
    Dispatch {
        kind: PhaseKind,
        requests: Vec<RangeRequest>,
        batch: BatchFetch,
    },
    Fail(AirphantError),
}

fn empty_batch() -> BatchFetch {
    BatchFetch {
        parts: Vec::new(),
        batch_latency: SimDuration::ZERO,
        batch_wait: SimDuration::ZERO,
        batch_download: SimDuration::ZERO,
    }
}

/// Postings planning over the engine's segments; falls through to the
/// document stage when every atom resolves without storage traffic.
fn postings_step(segments: &[&crate::Searcher], flight: &mut Flight) -> StepOutcome {
    let plan = plan_postings(segments, &flight.atoms);
    if plan.requests.is_empty() {
        match complete_postings(&plan, &flight.atoms, &empty_batch(), &mut flight.trace) {
            Ok(mut maps) => {
                // `plan_postings` sizes per-plan maps; `plan_documents`
                // expects one map per segment even with zero requests.
                maps.resize_with(segments.len(), HashMap::new);
                flight.maps = Some(maps);
                documents_step(segments, flight)
            }
            Err(e) => StepOutcome::Fail(e),
        }
    } else {
        let requests = plan.requests.clone();
        match segments[0].store_dyn().get_ranges(&requests) {
            Ok(batch) => {
                flight.postings_plan = Some(plan);
                StepOutcome::Dispatch {
                    kind: PhaseKind::Postings,
                    requests,
                    batch,
                }
            }
            Err(e) => StepOutcome::Fail(AirphantError::from(e)),
        }
    }
}

/// Document planning from resolved atom postings; completes immediately
/// when no candidates survive.
fn documents_step(segments: &[&crate::Searcher], flight: &mut Flight) -> StepOutcome {
    let maps = flight
        .maps
        .take()
        .expect("postings resolved before the document stage");
    let plan = plan_documents(segments, &flight.query, &flight.opts, &maps);
    if plan.requests.is_empty() {
        let result = complete_documents(
            segments,
            &flight.query,
            &flight.opts,
            &plan,
            None,
            flight.trace.clone(),
        );
        StepOutcome::Done(result)
    } else {
        let requests = plan.requests.clone();
        match segments[0].store_dyn().get_ranges(&requests) {
            Ok(batch) => {
                flight.doc_plan = Some(plan);
                StepOutcome::Dispatch {
                    kind: PhaseKind::Documents,
                    requests,
                    batch,
                }
            }
            Err(e) => StepOutcome::Fail(AirphantError::from(e)),
        }
    }
}

/// An event-driven query server over the simulated clock: queries
/// suspend while their storage batches are "in flight" in virtual time,
/// so tens of thousands can be in flight over a handful of OS threads.
///
/// Storage latencies in this reproduction are *data, not sleeps*, which
/// makes the async core a discrete-event simulation: dispatching a batch
/// is wall-clock-instant (the simulated store returns the bytes plus
/// their virtual latency), so an executor fetches eagerly, parks the
/// query on the event heap until `dispatch + batch_latency`, and serves
/// other queries meanwhile. Concurrency is therefore bounded by memory
/// (one [`Flight`] per query), not by threads — the direct answer to the
/// sync [`QueryServer`]'s thread-per-query cap.
///
/// Admission control (see [`crate::admission`]) replaces the bounded
/// queue: arrivals beyond the priority watermarks are shed with typed
/// [`SubmitError::Overloaded`]. Optional hedging duplicates straggling
/// batches after a latency percentile ([`HedgeConfig`]).
///
/// Both this server and the sync path drive the *same* staged planner
/// (`crate::plan`), so results are byte-for-byte identical by
/// construction — asserted by the `async_admission` test suite and the
/// `admission` bench.
pub struct AsyncQueryServer {
    shared: Arc<AsyncShared>,
    threads: Vec<JoinHandle<()>>,
    started: Instant,
    cache_stats: Option<Box<dyn Fn() -> (u64, u64) + Send + Sync>>,
    scheduler_stats: Option<Box<dyn Fn() -> SchedulerStats + Send + Sync>>,
}

impl AsyncQueryServer {
    /// Spawn the executor pool over a staged engine.
    pub fn start(engine: Arc<dyn StagedEngine>, config: AsyncServerConfig) -> Self {
        let slots = (0..config.storage_slots)
            .map(|_| Reverse(SimDuration::ZERO))
            .collect();
        let shared = Arc::new(AsyncShared {
            core: Mutex::new(AsyncCore {
                now: SimDuration::ZERO,
                seq: 0,
                next_id: 0,
                events: BinaryHeap::new(),
                flights: HashMap::new(),
                busy: 0,
                shutting_down: false,
                admission: AdmissionController::new(config.admission.clone()),
                slots,
                peak_in_flight: 0,
                hedges: 0,
                hedge_wins: 0,
                region_hedges: 0,
                dispatched: 0,
                primary_dispatches: 0,
                latency_ring: Vec::new(),
                ring_pos: 0,
                since_recompute: 0,
                hedge_threshold: None,
                completed: 0,
                rejected: 0,
                timed_out: 0,
                failed: 0,
                samples: Vec::new(),
                sojourns: Vec::new(),
                first_arrival: None,
                last_finish: SimDuration::ZERO,
            }),
            cv: Condvar::new(),
            engine,
            config: config.clone(),
            hedge_store: RwLock::new(None),
            region_backend: RwLock::new(None),
        });
        let threads = (0..config.executor_threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("airphant-async-{i}"))
                    .spawn(move || run_executor(&shared))
                    .expect("spawn async executor")
            })
            .collect();
        AsyncQueryServer {
            shared,
            threads,
            started: Instant::now(),
            cache_stats: None,
            scheduler_stats: None,
        }
    }

    /// Attach the below-cache backend hedges re-dispatch against.
    /// Without one, hedging stays disabled even if configured.
    pub fn with_hedge_backend(self, store: Arc<dyn ObjectStore>) -> Self {
        *self
            .shared
            .hedge_store
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Some(store);
        self
    }

    /// Attach a multi-region [`ReplicatedStore`] for *region-aware*
    /// hedging: straggling batches are re-dispatched to the store's
    /// next-nearest healthy region ([`ReplicatedStore::hedge_target`]),
    /// falling back to the generic hedge backend (if any) when fewer
    /// than two regions are healthy. Also surfaces the store's
    /// [`ReplicationStats`] in [`ServerStats::replication`].
    pub fn with_region_backend(self, store: Arc<ReplicatedStore>) -> Self {
        *self
            .shared
            .region_backend
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Some(store);
        self
    }

    /// Attach a shared-cache counter source (see
    /// [`QueryServer::with_cache_stats`]).
    pub fn with_cache_stats(
        mut self,
        stats: impl Fn() -> (u64, u64) + Send + Sync + 'static,
    ) -> Self {
        self.cache_stats = Some(Box::new(stats));
        self
    }

    /// Attach a shared I/O-scheduler counter source (see
    /// [`QueryServer::with_scheduler_stats`]).
    pub fn with_scheduler_stats(
        mut self,
        stats: impl Fn() -> SchedulerStats + Send + Sync + 'static,
    ) -> Self {
        self.scheduler_stats = Some(Box::new(stats));
        self
    }

    /// The current virtual clock.
    pub fn now(&self) -> SimDuration {
        self.shared.lock_core().now
    }

    /// Submit with a *synchronous* admission decision: shed queries get
    /// the typed [`SubmitError::Overloaded`] right here instead of
    /// through the ticket. Admission is evaluated at the submission's
    /// effective arrival time.
    pub fn try_submit(
        &self,
        query: Query,
        opts: QueryOptions,
        spec: SubmitSpec,
    ) -> std::result::Result<AsyncTicket, SubmitError> {
        let mut core = self.shared.lock_core();
        if core.shutting_down {
            return Err(SubmitError::ShutDown);
        }
        let arrival = spec.arrival.unwrap_or(core.now).max(core.now);
        if let Err(e) = core
            .admission
            .try_admit(spec.class, spec.tenant.as_deref(), arrival)
        {
            core.rejected += 1;
            return Err(e);
        }
        core.peak_in_flight = core.peak_in_flight.max(core.admission.in_flight() as u64);
        let (reply, rx) = sync_channel(1);
        self.enqueue_flight(&mut core, query, opts, spec, arrival, true, reply);
        self.shared.cv.notify_all();
        Ok(AsyncTicket { rx })
    }

    /// Submit with a *deferred* admission decision, made when the
    /// arrival event fires on the virtual clock (open-loop workloads
    /// with future arrival times). Rejections arrive through the ticket
    /// as [`ServeError::Rejected`] — still typed, never silent.
    pub fn submit_at(&self, query: Query, opts: QueryOptions, spec: SubmitSpec) -> AsyncTicket {
        let (reply, rx) = sync_channel(1);
        let mut core = self.shared.lock_core();
        if core.shutting_down {
            drop(core);
            let _ = reply.send(QueryResponse {
                result: Err(ServeError::Rejected(SubmitError::ShutDown)),
                finished_at: SimDuration::ZERO,
                sojourn: SimDuration::ZERO,
            });
            return AsyncTicket { rx };
        }
        let arrival = spec.arrival.unwrap_or(core.now).max(core.now);
        self.enqueue_flight(&mut core, query, opts, spec, arrival, false, reply);
        self.shared.cv.notify_all();
        AsyncTicket { rx }
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue_flight(
        &self,
        core: &mut AsyncCore,
        query: Query,
        opts: QueryOptions,
        spec: SubmitSpec,
        arrival: SimDuration,
        admitted: bool,
        reply: SyncSender<QueryResponse>,
    ) {
        let id = core.next_id;
        core.next_id += 1;
        if core.first_arrival.is_none_or(|f| arrival < f) {
            core.first_arrival = Some(arrival);
        }
        core.flights.insert(
            id,
            Flight {
                query,
                opts,
                class: spec.class,
                tenant: spec.tenant,
                arrival,
                admitted,
                stage: FlightStage::Submitted,
                epoch: 0,
                trace: QueryTrace::new(),
                atoms: Vec::new(),
                maps: None,
                postings_plan: None,
                doc_plan: None,
                pending: None,
                reply,
            },
        );
        core.push_event(arrival, EventAction::Arrive { id });
    }

    /// Pump the event loop on the calling thread until every scheduled
    /// event has been processed (deterministic single-threaded mode when
    /// `executor_threads == 0`; safe to call alongside executor threads).
    pub fn drain(&self) {
        loop {
            let entry = {
                let mut core = self.shared.lock_core();
                match core.events.pop() {
                    Some(Reverse(entry)) => {
                        if entry.at > core.now {
                            core.now = entry.at;
                        }
                        Some(entry)
                    }
                    None if core.busy > 0 => {
                        // Another thread is mid-flight and may push more
                        // events; wait for it.
                        let _core = self.shared.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                        None
                    }
                    None => return,
                }
            };
            if let Some(entry) = entry {
                process_event(&self.shared, entry.at, entry.action);
            }
        }
    }

    /// Snapshot the aggregate serving statistics. Latency percentiles
    /// are over *sojourns* (arrival → completion, including virtual
    /// queueing — what an open-loop client experiences); wait
    /// percentiles are over per-query storage waits, as in the sync
    /// server.
    pub fn stats(&self) -> ServerStats {
        let core = self.shared.lock_core();
        let mut waits: Vec<SimDuration> = core.samples.iter().map(|&(w, _)| w).collect();
        let mut sojourns = core.sojourns.clone();
        waits.sort();
        sojourns.sort();
        let completed = core.completed;
        let sim_makespan = core
            .last_finish
            .saturating_sub(core.first_arrival.unwrap_or(SimDuration::ZERO));
        let sim_secs = sim_makespan.as_secs_f64();
        let wall_secs = self.started.elapsed().as_secs_f64();
        ServerStats {
            workers: self.shared.config.executor_threads,
            completed,
            rejected: core.rejected,
            timed_out: core.timed_out,
            failed: core.failed,
            refreshes: 0,
            sim_makespan,
            qps_sim: if sim_secs > 0.0 {
                completed as f64 / sim_secs
            } else {
                0.0
            },
            qps_wall: if wall_secs > 0.0 {
                completed as f64 / wall_secs
            } else {
                0.0
            },
            wait_p50_ms: percentile(&waits, 0.50),
            wait_p95_ms: percentile(&waits, 0.95),
            wait_p99_ms: percentile(&waits, 0.99),
            latency_p50_ms: percentile(&sojourns, 0.50),
            latency_p95_ms: percentile(&sojourns, 0.95),
            latency_p99_ms: percentile(&sojourns, 0.99),
            cache: self.cache_stats.as_ref().map(|f| f()),
            scheduler: self.scheduler_stats.as_ref().map(|f| f()),
            peak_in_flight: core.peak_in_flight,
            hedges: core.hedges,
            hedge_wins: core.hedge_wins,
            primary_dispatches: core.primary_dispatches,
            region_hedges: core.region_hedges,
            replication: {
                let guard = self
                    .shared
                    .region_backend
                    .read()
                    .unwrap_or_else(|e| e.into_inner());
                guard.as_ref().map(|r| r.stats())
            },
            admission: Some(core.admission.stats()),
        }
    }

    /// Stop accepting submissions, serve everything still in flight, and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        self.stats()
    }

    fn begin_shutdown(&mut self) {
        {
            let mut core = self.shared.lock_core();
            core.shutting_down = true;
        }
        self.shared.cv.notify_all();
        if self.threads.is_empty() {
            self.drain();
        } else {
            for handle in self.threads.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for AsyncQueryServer {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

/// Background executor loop: pop events in virtual-time order, process,
/// repeat; exits once shut down and fully drained.
fn run_executor(shared: &Arc<AsyncShared>) {
    loop {
        let entry = {
            let mut core = shared.lock_core();
            loop {
                if let Some(Reverse(entry)) = core.events.pop() {
                    if entry.at > core.now {
                        core.now = entry.at;
                    }
                    break Some(entry);
                }
                if core.shutting_down && core.busy == 0 {
                    break None;
                }
                core = shared.cv.wait(core).unwrap_or_else(|e| e.into_inner());
            }
        };
        match entry {
            Some(entry) => process_event(shared, entry.at, entry.action),
            None => {
                shared.cv.notify_all();
                return;
            }
        }
    }
}

fn process_event(shared: &AsyncShared, at: SimDuration, action: EventAction) {
    match action {
        EventAction::Arrive { id } => process_arrival(shared, at, id),
        EventAction::StorageDone { id, epoch } => process_storage_done(shared, at, id, epoch),
        EventAction::HedgeFire { id, epoch } => process_hedge_fire(shared, at, id, epoch),
    }
}

fn process_arrival(shared: &AsyncShared, at: SimDuration, id: u64) {
    let mut flight = {
        let mut core = shared.lock_core();
        let Some(mut flight) = core.flights.remove(&id) else {
            return;
        };
        core.busy += 1;
        if !flight.admitted {
            match core
                .admission
                .try_admit(flight.class, flight.tenant.as_deref(), at)
            {
                Ok(()) => {
                    flight.admitted = true;
                    core.peak_in_flight =
                        core.peak_in_flight.max(core.admission.in_flight() as u64);
                }
                Err(err) => {
                    core.rejected += 1;
                    core.busy -= 1;
                    shared.cv.notify_all();
                    drop(core);
                    let _ = flight.reply.send(QueryResponse {
                        result: Err(ServeError::Rejected(err)),
                        finished_at: at,
                        sojourn: SimDuration::ZERO,
                    });
                    return;
                }
            }
        }
        flight
    };

    flight.stage = FlightStage::Planning;
    // Expand vocabulary atoms (Prefix/Fuzzy/short Substring) against the
    // engine's current segment set before planning; the expanded query
    // stays on the flight so the verify pass uses it too (exactness).
    let mut expanded: crate::Result<Option<crate::Query>> = Ok(None);
    shared.engine.with_segments(&mut |segments| {
        expanded = crate::expand::expand_for_segments(&flight.query, segments).map(|q| match q {
            std::borrow::Cow::Borrowed(_) => None,
            std::borrow::Cow::Owned(q) => Some(q),
        });
    });
    match expanded {
        Ok(Some(q)) => flight.query = q,
        Ok(None) => {}
        Err(e) => {
            finalize(shared, at, id, flight, Err(e));
            return;
        }
    }
    match flight.query.atoms() {
        Ok(atoms) => flight.atoms = atoms,
        Err(e) => {
            finalize(shared, at, id, flight, Err(e));
            return;
        }
    }
    let step = run_staged(shared, &mut flight, postings_step);
    apply_step(shared, at, id, flight, step);
}

fn process_storage_done(shared: &AsyncShared, at: SimDuration, id: u64, epoch: u32) {
    let (mut flight, pending) = {
        let mut core = shared.lock_core();
        match core.flights.get(&id) {
            Some(f) if f.epoch == epoch && f.pending.is_some() => {}
            // Absent (already terminal / checked out) or a stale epoch:
            // this is the cancelled loser of a hedge race — ignore.
            _ => return,
        }
        let mut flight = core.flights.remove(&id).expect("checked above");
        core.busy += 1;
        let pending = flight.pending.take().expect("checked above");
        let hedge_cfg = shared.config.hedge.as_ref();
        core.observe_batch_latency(hedge_cfg, pending.latency);
        (flight, pending)
    };

    flight.stage = FlightStage::Merging;
    // Charge the winning wait/download to the trace (the sync path's
    // `record_batch` with the hedge-adjusted timing).
    flight.trace.record_concurrent(
        pending.kind,
        pending.batch.parts.len() as u64,
        pending.batch.total_bytes(),
        pending.wait,
        pending.download,
    );

    match pending.kind {
        PhaseKind::Postings => {
            let plan = flight
                .postings_plan
                .take()
                .expect("postings plan set at dispatch");
            match complete_postings(&plan, &flight.atoms, &pending.batch, &mut flight.trace) {
                Ok(maps) => {
                    flight.maps = Some(maps);
                    let step = run_staged(shared, &mut flight, documents_step);
                    apply_step(shared, at, id, flight, step);
                }
                Err(e) => finalize(shared, at, id, flight, Err(e)),
            }
        }
        PhaseKind::Documents => {
            let plan = flight.doc_plan.take().expect("doc plan set at dispatch");
            let mut result: Option<SearchResult> = None;
            shared.engine.with_segments(&mut |segments| {
                result = Some(complete_documents(
                    segments,
                    &flight.query,
                    &flight.opts,
                    &plan,
                    Some(&pending.batch),
                    flight.trace.clone(),
                ));
            });
            let result = result.expect("with_segments invokes its callback");
            finalize(shared, at, id, flight, Ok(result));
        }
        other => unreachable!("no batches are dispatched for {other:?}"),
    }
}

fn process_hedge_fire(shared: &AsyncShared, at: SimDuration, id: u64, epoch: u32) {
    let Some(cfg) = shared.config.hedge.as_ref() else {
        return;
    };
    // Region-aware hedging takes precedence: re-dispatch to the
    // next-nearest healthy region. With fewer than two healthy regions
    // (or no region backend) fall back to the generic hedge store.
    let region_target = {
        let guard = shared
            .region_backend
            .read()
            .unwrap_or_else(|e| e.into_inner());
        guard.as_ref().and_then(|r| r.hedge_target())
    };
    let (store, via_region): (Arc<dyn ObjectStore>, bool) = match region_target {
        Some((_region, store)) => (store, true),
        None => {
            let guard = shared.hedge_store.read().unwrap_or_else(|e| e.into_inner());
            match guard.as_ref() {
                Some(s) => (s.clone(), false),
                None => return,
            }
        }
    };
    let mut core = shared.lock_core();
    // Budget: admitting this hedge must keep `hedges` within
    // `budget_fraction` of *primary* dispatches. Hedge dispatches do not
    // count in the denominator — they used to, which let every admitted
    // hedge enlarge the budget for the next one.
    if ((core.hedges + 1) as f64) > cfg.budget_fraction * core.primary_dispatches as f64 {
        return;
    }
    let requests: Vec<RangeRequest> = {
        let Some(flight) = core.flights.get(&id) else {
            return; // batch already completed (or query is terminal)
        };
        if flight.epoch != epoch {
            return; // stale timer from a previous hedge race
        }
        let Some(pending) = flight.pending.as_ref() else {
            return;
        };
        if pending.hedged {
            return;
        }
        pending.requests.clone()
    };
    core.hedges += 1;
    if via_region {
        core.region_hedges += 1;
    }
    // The duplicate fetch is wall-clock instant (simulated store), so it
    // runs under the scheduler lock — this keeps the original batch's
    // completion event from racing with the hedge decision.
    let Ok(duplicate) = store.get_ranges(&requests) else {
        return; // hedge failed; the original is still in flight
    };
    core.dispatched += 1;
    let latency = duplicate.batch_wait + duplicate.batch_download;
    let (_start, completes) = core.acquire_slot(at, latency);
    let mut won = false;
    let mut new_epoch = 0;
    if let Some(flight) = core.flights.get_mut(&id) {
        if let Some(pending) = flight.pending.as_mut() {
            pending.hedged = true;
            if completes < pending.completes_at {
                flight.epoch += 1;
                new_epoch = flight.epoch;
                pending.wait = duplicate.batch_wait;
                pending.download = duplicate.batch_download;
                pending.latency = latency;
                pending.completes_at = completes;
                // `pending.batch` keeps the original bytes: blobs are
                // immutable, so the duplicate's payload is identical and
                // results stay byte-for-byte equal to the sync path.
                won = true;
            }
        }
    }
    if won {
        core.hedge_wins += 1;
        core.push_event(
            completes,
            EventAction::StorageDone {
                id,
                epoch: new_epoch,
            },
        );
        shared.cv.notify_all();
    }
}

/// Run a planning/merging stage that needs the engine's segment set.
fn run_staged(
    shared: &AsyncShared,
    flight: &mut Flight,
    stage: fn(&[&crate::Searcher], &mut Flight) -> StepOutcome,
) -> StepOutcome {
    let mut out: Option<StepOutcome> = None;
    shared.engine.with_segments(&mut |segments| {
        out = Some(stage(segments, flight));
    });
    out.expect("with_segments invokes its callback")
}

/// Apply a stage's outcome: suspend on a dispatched batch, or reach a
/// terminal state.
fn apply_step(
    shared: &AsyncShared,
    at: SimDuration,
    id: u64,
    mut flight: Flight,
    step: StepOutcome,
) {
    match step {
        StepOutcome::Done(result) => finalize(shared, at, id, flight, Ok(result)),
        StepOutcome::Fail(e) => finalize(shared, at, id, flight, Err(e)),
        StepOutcome::Dispatch {
            kind,
            requests,
            batch,
        } => {
            let mut core = shared.lock_core();
            core.dispatched += 1;
            core.primary_dispatches += 1;
            let latency = batch.batch_wait + batch.batch_download;
            let (start, completes) = core.acquire_slot(at, latency);
            flight.stage = FlightStage::AwaitingStorage(kind);
            flight.pending = Some(PendingBatch {
                kind,
                requests,
                wait: batch.batch_wait,
                download: batch.batch_download,
                latency,
                completes_at: completes,
                batch,
                hedged: false,
            });
            let epoch = flight.epoch;
            core.push_event(completes, EventAction::StorageDone { id, epoch });
            // Arm the hedge timer only when it could actually fire before
            // the batch completes — a timer past `completes` would pop as
            // a stale no-op anyway.
            if shared.config.hedge.is_some() {
                let armed = {
                    let generic = shared.hedge_store.read().unwrap_or_else(|e| e.into_inner());
                    let region = shared
                        .region_backend
                        .read()
                        .unwrap_or_else(|e| e.into_inner());
                    generic.is_some() || region.is_some()
                };
                if armed {
                    if let Some(threshold) = core.hedge_threshold {
                        let fire = start + threshold;
                        if fire < completes {
                            core.push_event(fire, EventAction::HedgeFire { id, epoch });
                        }
                    }
                }
            }
            core.flights.insert(id, flight);
            core.busy -= 1;
            shared.cv.notify_all();
        }
    }
}

/// Deliver a terminal outcome: deadline check, counters, samples, reply.
fn finalize(
    shared: &AsyncShared,
    at: SimDuration,
    _id: u64,
    mut flight: Flight,
    outcome: Result<SearchResult>,
) {
    flight.stage = FlightStage::Done;
    debug_assert_eq!(flight.stage, FlightStage::Done);
    let service_total = flight.trace.total();
    let service_wait = flight.trace.wait();
    let sojourn = at.saturating_sub(flight.arrival);
    enum Bucket {
        Completed,
        TimedOut,
        Failed,
    }
    let (result, bucket) = match outcome {
        Ok(result) => match shared.config.deadline {
            Some(deadline) if service_total > deadline => (
                Err(ServeError::Failed(AirphantError::Storage(
                    StorageError::Timeout {
                        name: format!(
                            "query missed its {deadline} deadline (took {service_total})"
                        ),
                    },
                ))),
                Bucket::TimedOut,
            ),
            _ => (Ok(result), Bucket::Completed),
        },
        Err(e) => (Err(ServeError::Failed(e)), Bucket::Failed),
    };
    {
        let mut core = shared.lock_core();
        match bucket {
            Bucket::Completed => core.completed += 1,
            Bucket::TimedOut => core.timed_out += 1,
            Bucket::Failed => core.failed += 1,
        }
        // Timed-out queries stay in the samples, as in the sync server:
        // percentiles report the true served tail.
        core.samples.push((service_wait, service_total));
        core.sojourns.push(sojourn);
        if at > core.last_finish {
            core.last_finish = at;
        }
        core.admission.on_complete(sojourn);
        core.busy -= 1;
        shared.cv.notify_all();
    }
    let _ = flight.reply.send(QueryResponse {
        result,
        finished_at: at,
        sojourn,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use crate::Searcher;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{
        BatchFetch, CachedStore, CoalescingStore, Fetched, InMemoryStore, LatencyModel,
        ObjectStore, RangeRequest, RegionProfile, SimulatedCloudStore,
    };
    use bytes::Bytes;
    use std::sync::Condvar;

    fn build_index(store: Arc<dyn ObjectStore>, lines: &[&str]) {
        let blob = lines.join("\n");
        store.put("c/blob-0", Bytes::from(blob)).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/blob-0".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(128)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
    }

    fn lines(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("word{i} shared{} common", i % 5))
            .collect()
    }

    #[test]
    fn pooled_results_match_direct_execution() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs = lines(60);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(store.clone(), &refs);
        let searcher = Arc::new(Searcher::open(store, "idx").unwrap());
        let server = QueryServer::start(
            searcher.clone(),
            ServerConfig::new().with_workers(4).with_queue_capacity(16),
        );
        for i in 0..30 {
            let q = Query::all([
                Query::term(format!("word{i}")),
                Query::term(format!("shared{}", i % 5)),
            ]);
            let served = server.execute(&q, &QueryOptions::new()).unwrap();
            let direct = searcher.execute(&q, &QueryOptions::new()).unwrap();
            let texts = |r: &SearchResult| {
                let mut v: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
                v.sort();
                v.join("|")
            };
            assert_eq!(texts(&served), texts(&direct), "query {i}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 30);
        assert_eq!(stats.rejected + stats.timed_out + stats.failed, 0);
    }

    /// A store whose reads park on a gate until the test opens it — makes
    /// queue-full states deterministic. Flags when a read has parked so
    /// tests can handshake instead of sleeping.
    struct GatedStore<S> {
        inner: S,
        gate: Mutex<bool>,
        cv: Condvar,
        parked: Mutex<bool>,
        parked_cv: Condvar,
    }

    impl<S> GatedStore<S> {
        fn new(inner: S) -> Self {
            GatedStore {
                inner,
                gate: Mutex::new(false),
                cv: Condvar::new(),
                parked: Mutex::new(false),
                parked_cv: Condvar::new(),
            }
        }

        fn open(&self) {
            *self.gate.lock().unwrap() = true;
            self.cv.notify_all();
        }

        fn wait_until_parked(&self) {
            let mut parked = self.parked.lock().unwrap();
            while !*parked {
                parked = self.parked_cv.wait(parked).unwrap();
            }
        }

        fn block(&self) {
            {
                *self.parked.lock().unwrap() = true;
                self.parked_cv.notify_all();
            }
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }
    }

    impl<S: ObjectStore> ObjectStore for GatedStore<S> {
        fn put(&self, name: &str, data: Bytes) -> airphant_storage::Result<()> {
            self.inner.put(name, data)
        }
        fn get(&self, name: &str) -> airphant_storage::Result<Fetched> {
            self.inner.get(name)
        }
        fn get_range(&self, name: &str, o: u64, l: u64) -> airphant_storage::Result<Fetched> {
            self.block();
            self.inner.get_range(name, o, l)
        }
        fn get_ranges(&self, reqs: &[RangeRequest]) -> airphant_storage::Result<BatchFetch> {
            // Init reads (the header fetch) are Index-class; only gate
            // query-time traffic (Superpost + Data) so `Searcher::open`
            // never parks.
            if reqs
                .iter()
                .any(|r| r.class != airphant_storage::RangeClass::Index)
            {
                self.block();
            }
            self.inner.get_ranges(reqs)
        }
        fn size_of(&self, name: &str) -> airphant_storage::Result<u64> {
            self.inner.size_of(name)
        }
        fn list(&self, prefix: &str) -> airphant_storage::Result<Vec<String>> {
            self.inner.list(prefix)
        }
        fn delete(&self, name: &str) -> airphant_storage::Result<()> {
            self.inner.delete(name)
        }
    }

    #[test]
    fn full_queue_rejects_with_typed_error() {
        let plain: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs = lines(10);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(plain.clone(), &refs);
        // Open the searcher over the *ungated* store (init must not park),
        // then serve through a gate that stalls the single worker.
        let gated = Arc::new(GatedStore::new(plain.clone()));
        let searcher = {
            // Re-point the searcher's store at the gated stack.
            Arc::new(Searcher::open(gated.clone() as Arc<dyn ObjectStore>, "idx").unwrap())
        };
        let server = QueryServer::start(
            searcher,
            ServerConfig::new().with_workers(1).with_queue_capacity(2),
        );
        // One query occupies the worker (parked on the gate); two fill the
        // queue; the next must be rejected with the typed error.
        let mut tickets = Vec::new();
        let mut accepted = 0;
        let mut rejected = None;
        for i in 0..8 {
            match server.try_submit(Query::term(format!("word{}", i % 10)), QueryOptions::new()) {
                Ok(t) => {
                    accepted += 1;
                    tickets.push(t);
                }
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
            // Handshake: only count the worker as occupied once it has
            // actually parked on the gate, so the tallies below are
            // deterministic (1 in flight + 2 queued) on any scheduler.
            if i == 0 {
                gated.wait_until_parked();
            }
        }
        assert_eq!(rejected, Some(SubmitError::QueueFull { capacity: 2 }));
        assert_eq!(accepted, 3, "1 serving + 2 queued");
        gated.open();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn wait_on_open_gate_is_not_required_for_shutdown() {
        // Dropping the server with no traffic must join cleanly.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(store.clone(), &["alpha beta"]);
        let searcher = Arc::new(Searcher::open(store, "idx").unwrap());
        let server = QueryServer::start(searcher, ServerConfig::new());
        drop(server);
    }

    #[test]
    fn deadline_surfaces_storage_timeout() {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            5,
        ));
        {
            let s: Arc<dyn ObjectStore> = sim.clone();
            let docs = lines(20);
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            build_index(s, &refs);
        }
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        // gcs-like round trips are ~45 ms; a 1 ms deadline always trips.
        let server = QueryServer::start(
            searcher,
            ServerConfig::new()
                .with_workers(2)
                .with_deadline(SimDuration::from_millis(1)),
        );
        let err = server
            .execute(&Query::term("word3"), &QueryOptions::new())
            .unwrap_err();
        assert!(
            matches!(err, AirphantError::Storage(StorageError::Timeout { .. })),
            "expected Timeout, got {err:?}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.completed, 0);
        // The timed-out query's true latency stays in the samples: the
        // tail is not censored at the deadline and the worker's spent
        // service time still shows up in the makespan.
        assert!(stats.latency_p99_ms > 1.0, "tail must exceed the deadline");
        assert!(stats.sim_makespan > SimDuration::from_millis(1));
    }

    #[test]
    fn stats_percentiles_and_throughput_model() {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            9,
        ));
        {
            let s: Arc<dyn ObjectStore> = sim.clone();
            let docs = lines(40);
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            build_index(s, &refs);
        }
        // The full serving stack of ADR-005: cloud → scheduler → cache.
        let scheduler = Arc::new(CoalescingStore::new(sim.clone() as Arc<dyn ObjectStore>));
        let cache = Arc::new(CachedStore::new(
            scheduler.clone() as Arc<dyn ObjectStore>,
            1 << 20,
        ));
        let searcher =
            Arc::new(Searcher::open(cache.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let cache_for_stats = cache.clone();
        let scheduler_for_stats = scheduler.clone();
        let server = QueryServer::start(
            searcher,
            ServerConfig::new().with_workers(4).with_queue_capacity(32),
        )
        .with_cache_stats(move || cache_for_stats.hit_stats())
        .with_scheduler_stats(move || scheduler_for_stats.stats());
        let tickets: Vec<Ticket> = (0..40)
            .map(|i| {
                server
                    .submit(Query::term(format!("word{}", i % 40)), QueryOptions::new())
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 40);
        assert!(stats.qps_sim > 0.0);
        assert!(stats.latency_p50_ms > 0.0);
        assert!(stats.latency_p50_ms <= stats.latency_p95_ms);
        assert!(stats.latency_p95_ms <= stats.latency_p99_ms);
        assert!(stats.wait_p50_ms <= stats.wait_p99_ms);
        assert!(stats.cache.is_some());
        assert!(stats.cache_hit_rate().is_some());
        // The attached scheduler's counters are plumbed through, and the
        // cache's miss batches did flow through it.
        let sched = stats.scheduler.expect("scheduler stats attached");
        assert!(
            sched.backend_batches > 0,
            "misses flow through the scheduler"
        );
        // The closed-loop model: 4 workers serve 40 queries at least ~4x
        // faster than one worker would (same samples, fewer servers).
        let one = closed_loop_makespan(
            &{
                let samples = server.shared.samples.lock().unwrap().clone();
                let mut totals: Vec<SimDuration> = samples.iter().map(|&(_, t)| t).collect();
                totals.sort();
                totals
            },
            1,
        );
        assert!(
            stats.sim_makespan < one,
            "4 workers {} must beat 1 worker {one}",
            stats.sim_makespan
        );
        drop(server);
    }

    /// Panics on the first query, answers normally afterwards.
    struct PanicOnceEngine {
        inner: Searcher,
        panicked: std::sync::atomic::AtomicBool,
    }

    impl SearchEngine for PanicOnceEngine {
        fn name(&self) -> &'static str {
            "PanicOnce"
        }
        fn lookup(
            &self,
            word: &str,
        ) -> Result<(iou_sketch::PostingsList, airphant_storage::QueryTrace)> {
            self.inner.lookup(word)
        }
        fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("injected engine panic");
            }
            self.inner.execute(query, opts)
        }
        fn index_bytes(&self) -> u64 {
            self.inner.index_usage_bytes()
        }
    }

    #[test]
    fn engine_panic_fails_the_query_but_not_the_worker() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(store.clone(), &["alpha beta", "beta gamma"]);
        let engine = Arc::new(PanicOnceEngine {
            inner: Searcher::open(store, "idx").unwrap(),
            panicked: std::sync::atomic::AtomicBool::new(false),
        });
        // One worker: if the panic killed it, the second query would hang.
        let server = QueryServer::start(engine, ServerConfig::new().with_workers(1));
        let err = server
            .execute(&Query::term("beta"), &QueryOptions::new())
            .unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "caller sees an error, got {err}"
        );
        let ok = server
            .execute(&Query::term("beta"), &QueryOptions::new())
            .unwrap();
        assert_eq!(ok.hits.len(), 2, "the worker survived the panic");
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    fn ms_samples(values: &[u64]) -> Vec<SimDuration> {
        let mut v: Vec<SimDuration> = values
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn percentile_nearest_rank_single_sample() {
        // n = 1: every percentile is the one sample.
        let samples = ms_samples(&[42]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&samples, q), 42.0, "q={q}");
        }
    }

    #[test]
    fn percentile_nearest_rank_two_samples() {
        // n = 2, nearest rank = ceil(q·n) clamped to [1, n]:
        // p50 → rank 1 (the smaller), p95/p99 → rank 2 (the larger).
        let samples = ms_samples(&[10, 90]);
        assert_eq!(percentile(&samples, 0.50), 10.0);
        assert_eq!(percentile(&samples, 0.51), 90.0);
        assert_eq!(percentile(&samples, 0.95), 90.0);
        assert_eq!(percentile(&samples, 0.99), 90.0);
        // q = 0 still returns the minimum (rank clamps up to 1).
        assert_eq!(percentile(&samples, 0.0), 10.0);
    }

    #[test]
    fn percentile_nearest_rank_hundred_samples() {
        // n = 100 with samples 1..=100 ms: rank ceil(q·100) picks value
        // q·100 exactly — p50 = 50, p95 = 95, p99 = 99, p100 = 100.
        let values: Vec<u64> = (1..=100).collect();
        let samples = ms_samples(&values);
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.95), 95.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        // And just over a rank boundary rounds up to the next sample.
        assert_eq!(percentile(&samples, 0.501), 51.0);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn timed_out_queries_stay_in_percentile_samples() {
        // One fast query (hits the deadline) and one slow (misses it):
        // the slow sample must still dominate the p99, not be censored.
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            11,
        ));
        {
            let s: Arc<dyn ObjectStore> = sim.clone();
            let docs = lines(20);
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            build_index(s, &refs);
        }
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let server = QueryServer::start(
            searcher,
            ServerConfig::new()
                .with_workers(1)
                .with_deadline(SimDuration::from_millis(1)),
        );
        for i in 0..5 {
            // gcs-like round trips are ~45 ms: every query times out.
            let err = server
                .execute(&Query::term(format!("word{i}")), &QueryOptions::new())
                .unwrap_err();
            assert!(matches!(
                err,
                AirphantError::Storage(StorageError::Timeout { .. })
            ));
        }
        let stats = server.shutdown();
        assert_eq!(stats.timed_out, 5);
        assert_eq!(stats.completed, 0);
        // All five served latencies are in the samples: p50 as well as
        // p99 reflect the true ~45ms service times, not the 1ms deadline.
        assert!(stats.latency_p50_ms > 10.0);
        assert!(stats.latency_p99_ms >= stats.latency_p50_ms);
    }

    #[test]
    fn refresh_swaps_engine_between_queries() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(store.clone(), &["alpha one", "beta two"]);
        {
            // A second index under another prefix with different docs.
            let blob = "gamma three\nbeta four";
            store.put("c/blob-1", Bytes::from(blob)).unwrap();
            let corpus = Corpus::new(
                store.clone(),
                vec!["c/blob-1".into()],
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            );
            Builder::new(
                AirphantConfig::default()
                    .with_total_bins(128)
                    .with_manual_layers(2)
                    .with_common_fraction(0.0),
            )
            .build(&corpus, "idx2")
            .unwrap();
        }
        let server = QueryServer::start(
            Arc::new(Searcher::open(store.clone(), "idx").unwrap()),
            ServerConfig::new().with_workers(2),
        );
        // Before the refresh: generation 1 answers.
        let r = server
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(server
            .execute(&Query::term("gamma"), &QueryOptions::new())
            .unwrap()
            .hits
            .is_empty());
        // Refresh: no restart, same pool, new engine.
        server.refresh(Arc::new(Searcher::open(store, "idx2").unwrap()));
        let r = server
            .execute(&Query::term("gamma"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(server
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap()
            .hits
            .is_empty());
        let stats = server.shutdown();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn refresh_does_not_disturb_inflight_queries() {
        // A query parked inside the old engine's storage read while the
        // refresh lands must finish on the OLD generation.
        let plain: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(plain.clone(), &["alpha old-gen"]);
        let gated = Arc::new(GatedStore::new(plain.clone()));
        let old_engine =
            Arc::new(Searcher::open(gated.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let server = Arc::new(QueryServer::start(
            old_engine,
            ServerConfig::new().with_workers(1),
        ));
        std::thread::scope(|s| {
            let inflight = {
                let server = server.clone();
                s.spawn(move || {
                    server
                        .execute(&Query::term("alpha"), &QueryOptions::new())
                        .unwrap()
                })
            };
            gated.wait_until_parked();
            // Build a *different* corpus under a fresh prefix and swap it
            // in while the first query is still parked mid-read.
            plain
                .put("c2/blob-0", Bytes::from("alpha new-gen"))
                .unwrap();
            let corpus = Corpus::new(
                plain.clone(),
                vec!["c2/blob-0".into()],
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            );
            Builder::new(
                AirphantConfig::default()
                    .with_total_bins(128)
                    .with_manual_layers(2)
                    .with_common_fraction(0.0),
            )
            .build(&corpus, "idx-new")
            .unwrap();
            server.refresh(Arc::new(Searcher::open(plain.clone(), "idx-new").unwrap()));
            gated.open();
            let old_result = inflight.join().unwrap();
            assert_eq!(old_result.hits.len(), 1);
            assert!(
                old_result.hits[0].text.contains("old-gen"),
                "in-flight query finished on its own generation"
            );
        });
        // The next query runs on the refreshed engine.
        let fresh = server
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap();
        assert!(fresh.hits[0].text.contains("new-gen"));
    }

    #[test]
    fn closed_loop_makespan_is_monotone_in_workers() {
        let latencies: Vec<SimDuration> = (0..100)
            .map(|i| SimDuration::from_millis(40 + (i * 13) % 30))
            .collect();
        let mut prev = SimDuration::from_nanos(u64::MAX);
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let m = closed_loop_makespan(&latencies, workers);
            assert!(m <= prev, "makespan must not grow with workers");
            prev = m;
        }
        assert_eq!(closed_loop_makespan(&[], 4), SimDuration::ZERO);
    }

    // -- async serving core ------------------------------------------------

    /// Build a cloud-latency corpus and return `(searcher, backend sim)`.
    fn async_fixture(
        n: usize,
        seed: u64,
    ) -> (Arc<Searcher>, Arc<SimulatedCloudStore<InMemoryStore>>) {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            seed,
        ));
        let docs = lines(n);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(sim.clone() as Arc<dyn ObjectStore>, &refs);
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        (searcher, sim)
    }

    fn canonical_hits(r: &SearchResult) -> String {
        let mut v: Vec<String> = r
            .hits
            .iter()
            .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
            .collect();
        v.sort();
        v.join("|")
    }

    #[test]
    fn async_results_match_sync_path_byte_for_byte() {
        let (searcher, _sim) = async_fixture(60, 11);
        let server = AsyncQueryServer::start(
            searcher.clone() as Arc<dyn StagedEngine>,
            AsyncServerConfig::new().with_executor_threads(0),
        );
        let queries: Vec<Query> = (0..30)
            .map(|i| {
                Query::all([
                    Query::term(format!("word{i}")),
                    Query::term(format!("shared{}", i % 5)),
                ])
            })
            .collect();
        let tickets: Vec<AsyncTicket> = queries
            .iter()
            .map(|q| server.submit_at(q.clone(), QueryOptions::new(), SubmitSpec::new()))
            .collect();
        server.drain();
        for (q, t) in queries.iter().zip(tickets) {
            let resp = t.wait();
            let served = resp.result.expect("async query served");
            let direct = searcher.execute(q, &QueryOptions::new()).unwrap();
            assert_eq!(canonical_hits(&served), canonical_hits(&direct));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 30);
        assert_eq!(stats.rejected + stats.failed + stats.timed_out, 0);
        let adm = stats.admission.expect("admission stats attached");
        assert_eq!(adm.submitted, adm.admitted + adm.shed_total());
    }

    #[test]
    fn async_executor_threads_serve_without_pumping() {
        let (searcher, _sim) = async_fixture(40, 23);
        let server = AsyncQueryServer::start(
            searcher.clone() as Arc<dyn StagedEngine>,
            AsyncServerConfig::new().with_executor_threads(2),
        );
        let tickets: Vec<AsyncTicket> = (0..20)
            .map(|i| {
                server
                    .try_submit(
                        Query::term(format!("word{i}")),
                        QueryOptions::new(),
                        SubmitSpec::new().with_class(Priority::High),
                    )
                    .expect("admitted under empty queue")
            })
            .collect();
        for t in tickets {
            assert!(t.wait().result.is_ok());
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 20);
        assert!(stats.latency_p50_ms > 0.0, "virtual latency recorded");
        assert!(stats.qps_sim > 0.0);
    }

    #[test]
    fn async_overload_sheds_low_before_high_with_typed_errors() {
        let (searcher, _sim) = async_fixture(40, 31);
        // Queue of 4; Low watermark = 2, Normal = 3, High = 4.
        let server = AsyncQueryServer::start(
            searcher as Arc<dyn StagedEngine>,
            AsyncServerConfig::new()
                .with_executor_threads(0)
                .with_admission(AdmissionConfig::with_max_in_flight(4)),
        );
        let submit = |class: Priority| {
            server.try_submit(
                Query::term("common"),
                QueryOptions::new(),
                SubmitSpec::new().with_class(class),
            )
        };
        let mut held = Vec::new();
        held.push(submit(Priority::Normal).expect("first admitted"));
        held.push(submit(Priority::Normal).expect("second admitted"));
        // Low watermark (2) reached: Low is shed, Normal still admitted.
        let err = submit(Priority::Low).expect_err("low shed at watermark");
        match err {
            SubmitError::Overloaded { class, retry_after } => {
                assert_eq!(class, Priority::Low);
                assert!(retry_after > SimDuration::ZERO, "retry hint populated");
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        held.push(submit(Priority::Normal).expect("normal rides above low watermark"));
        // Normal watermark (3) reached: Normal shed, High admitted.
        assert!(matches!(
            submit(Priority::Normal),
            Err(SubmitError::Overloaded {
                class: Priority::Normal,
                ..
            })
        ));
        held.push(submit(Priority::High).expect("high priority uses the full queue"));
        // Hard limit (4): even High is shed now.
        assert!(matches!(
            submit(Priority::High),
            Err(SubmitError::Overloaded {
                class: Priority::High,
                ..
            })
        ));
        server.drain();
        for t in held {
            assert!(t.wait().result.is_ok(), "admitted queries complete");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 3);
        let adm = stats.admission.unwrap();
        assert_eq!(adm.shed_low, 1);
        assert_eq!(adm.shed_normal, 1);
        assert_eq!(adm.shed_high, 1);
        assert_eq!(adm.submitted, adm.admitted + adm.shed_total());
    }

    #[test]
    fn async_storage_slots_create_queueing() {
        // Same workload through 1 slot vs. many slots: the constrained
        // backend must stretch the virtual makespan.
        let mut makespans = Vec::new();
        for slots in [1usize, 64] {
            let (searcher, _sim) = async_fixture(40, 47);
            let server = AsyncQueryServer::start(
                searcher as Arc<dyn StagedEngine>,
                AsyncServerConfig::new()
                    .with_executor_threads(0)
                    .with_storage_slots(slots),
            );
            let tickets: Vec<AsyncTicket> = (0..30)
                .map(|i| {
                    server.submit_at(
                        Query::term(format!("word{i}")),
                        QueryOptions::new(),
                        SubmitSpec::new().at(SimDuration::ZERO),
                    )
                })
                .collect();
            server.drain();
            for t in tickets {
                assert!(t.wait().result.is_ok());
            }
            makespans.push(server.shutdown().sim_makespan);
        }
        assert!(
            makespans[0] > makespans[1],
            "1 slot {} must be slower than 64 slots {}",
            makespans[0],
            makespans[1]
        );
    }

    #[test]
    fn async_hedging_counts_and_respects_budget() {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            5,
        ));
        let docs = lines(60);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(sim.clone() as Arc<dyn ObjectStore>, &refs);
        // Hedge re-dispatch goes to an *independent* clone of the backend
        // (fresh latency stream, same bytes) — the production story of a
        // second replica.
        let hedge_backend = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            6,
        ));
        for name in sim.list("").unwrap() {
            let bytes = sim.get(&name).unwrap().bytes;
            hedge_backend.put(&name, bytes).unwrap();
        }
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let budget = 0.2;
        let server = AsyncQueryServer::start(
            searcher.clone() as Arc<dyn StagedEngine>,
            AsyncServerConfig::new()
                .with_executor_threads(0)
                .with_hedge(HedgeConfig {
                    percentile: 0.5,
                    min_samples: 16,
                    budget_fraction: budget,
                }),
        )
        .with_hedge_backend(hedge_backend as Arc<dyn ObjectStore>);
        let queries: Vec<Query> = (0..120)
            .map(|i| Query::term(format!("word{}", i % 60)))
            .collect();
        let tickets: Vec<AsyncTicket> = queries
            .iter()
            .map(|q| server.submit_at(q.clone(), QueryOptions::new(), SubmitSpec::new()))
            .collect();
        server.drain();
        for (q, t) in queries.iter().zip(tickets) {
            let served = t.wait().result.expect("served");
            let direct = searcher.execute(q, &QueryOptions::new()).unwrap();
            assert_eq!(
                canonical_hits(&served),
                canonical_hits(&direct),
                "hedged results stay byte-for-byte equal"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 120);
        assert!(
            stats.hedges > 0,
            "an aggressive p50 threshold must fire some hedges"
        );
        assert!(stats.hedge_wins <= stats.hedges);
        let adm = stats.admission.unwrap();
        // Budget: hedges bounded by the configured fraction of *primary*
        // dispatches — exactly, no slack. The old check counted hedge
        // dispatches in the denominator, so each admitted hedge enlarged
        // the budget for the next one.
        assert!(
            stats.primary_dispatches > 0,
            "served queries must have dispatched primary batches"
        );
        assert!(
            stats.primary_dispatches <= adm.admitted * 2,
            "≤ 2 primary batches (postings + documents) per query"
        );
        assert!(
            (stats.hedges as f64) <= budget * stats.primary_dispatches as f64,
            "hedges {} must stay within {budget} of {} primary dispatches",
            stats.hedges,
            stats.primary_dispatches
        );
    }

    #[test]
    fn hedge_budget_denominator_excludes_hedges() {
        // Same workload shape as above, but with a tight budget so the
        // cap binds: at 5% of primaries, 240 primary dispatches allow at
        // most 12 hedges even though an aggressive p50 threshold would
        // happily fire one per batch.
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            9,
        ));
        let docs = lines(60);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(sim.clone() as Arc<dyn ObjectStore>, &refs);
        let hedge_backend = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            10,
        ));
        for name in sim.list("").unwrap() {
            let bytes = sim.get(&name).unwrap().bytes;
            hedge_backend.put(&name, bytes).unwrap();
        }
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let budget = 0.05;
        let server = AsyncQueryServer::start(
            searcher as Arc<dyn StagedEngine>,
            AsyncServerConfig::new()
                .with_executor_threads(0)
                .with_hedge(HedgeConfig {
                    percentile: 0.5,
                    min_samples: 16,
                    budget_fraction: budget,
                }),
        )
        .with_hedge_backend(hedge_backend as Arc<dyn ObjectStore>);
        let tickets: Vec<AsyncTicket> = (0..120)
            .map(|i| {
                server.submit_at(
                    Query::term(format!("word{}", i % 60)),
                    QueryOptions::new(),
                    SubmitSpec::new(),
                )
            })
            .collect();
        server.drain();
        for t in tickets {
            t.wait().result.expect("served");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 120);
        assert!(
            (stats.hedges as f64) <= budget * stats.primary_dispatches as f64,
            "hedges {} exceed {budget} of {} primary dispatches",
            stats.hedges,
            stats.primary_dispatches
        );
        // The old denominator (all dispatches = primaries + hedges) would
        // have admitted strictly more: pin that the enforced cap is the
        // primaries-only one.
        let cap = (budget * stats.primary_dispatches as f64).floor() as u64;
        assert!(
            stats.hedges <= cap,
            "hedges {} must not exceed the primaries-only cap {cap}",
            stats.hedges
        );
    }

    #[test]
    fn region_hedges_route_to_the_next_nearest_region() {
        // Three regions at the paper's latency spread over one shared
        // corpus. With a region backend attached, every hedge must route
        // through it (region_hedges == hedges), reads must prefer the
        // nearest region, and results stay byte-for-byte equal — the
        // other region holds the same immutable blobs.
        let backing = Arc::new(InMemoryStore::new());
        let docs = lines(60);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(backing.clone() as Arc<dyn ObjectStore>, &refs);
        let regions: Vec<(RegionProfile, Arc<dyn ObjectStore>)> = RegionProfile::paper_spread()
            .into_iter()
            .enumerate()
            .map(|(i, profile)| {
                let store: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
                    backing.clone(),
                    LatencyModel::gcs_like().with_region(profile.clone()),
                    11 + i as u64,
                ));
                (profile, store)
            })
            .collect();
        let replicated = Arc::new(ReplicatedStore::new(regions));
        let searcher =
            Arc::new(Searcher::open(replicated.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let server = AsyncQueryServer::start(
            searcher.clone() as Arc<dyn StagedEngine>,
            AsyncServerConfig::new()
                .with_executor_threads(0)
                .with_hedge(HedgeConfig {
                    percentile: 0.5,
                    min_samples: 16,
                    budget_fraction: 0.2,
                }),
        )
        .with_region_backend(replicated.clone());
        let queries: Vec<Query> = (0..120)
            .map(|i| Query::term(format!("word{}", i % 60)))
            .collect();
        let tickets: Vec<AsyncTicket> = queries
            .iter()
            .map(|q| server.submit_at(q.clone(), QueryOptions::new(), SubmitSpec::new()))
            .collect();
        server.drain();
        for (q, t) in queries.iter().zip(tickets) {
            let served = t.wait().result.expect("served");
            let direct = searcher.execute(q, &QueryOptions::new()).unwrap();
            assert_eq!(
                canonical_hits(&served),
                canonical_hits(&direct),
                "region-hedged results stay byte-for-byte equal"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 120);
        assert!(
            stats.hedges > 0,
            "an aggressive p50 threshold must fire some hedges"
        );
        assert_eq!(
            stats.region_hedges, stats.hedges,
            "with a healthy region backend every hedge is region-aware"
        );
        let replication = stats.replication.expect("region backend attached");
        let (nearest, nearest_reads) = &replication.reads_by_region[0];
        assert_eq!(nearest, "us-central1-c");
        assert!(
            *nearest_reads > 0,
            "primary reads must land on the nearest region"
        );
        assert_eq!(replication.demotions, 0, "healthy regions never demote");
    }
}
