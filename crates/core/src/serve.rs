//! Concurrent query serving: a worker pool over one shared read path.
//!
//! The paper positions Airphant as a cloud index for read-oriented
//! workloads under "heavy traffic from millions of users": Searchers are
//! lightweight and stateless, so a serving node scales by pointing many
//! query threads at one shared [`SearchEngine`] (usually a
//! [`Searcher`](crate::Searcher) over a shared byte-budgeted
//! [`CachedStore`](airphant_storage::CachedStore)). [`QueryServer`] is
//! that serving node:
//!
//! * a **fixed worker pool** drains a **bounded submission queue**; when
//!   the queue is full, [`QueryServer::try_submit`] rejects with the typed
//!   [`SubmitError::QueueFull`] (backpressure instead of unbounded memory);
//! * an optional **per-query deadline** on the simulated clock: queries
//!   whose end-to-end simulated latency exceeds it surface
//!   [`StorageError::Timeout`] to the caller and count as timed out;
//! * aggregate [`ServerStats`]: throughput, tail latency, cache hit rate,
//!   rejected/timed-out counts;
//! * a **swappable engine slot**: [`QueryServer::refresh`] installs a
//!   fresh engine (e.g. a reopened
//!   [`SegmentedSearcher`](crate::SegmentedSearcher) after an append or
//!   compaction) with zero downtime — in-flight queries finish on the
//!   generation they started on, later queries see the new one.
//!
//! ## Throughput on the virtual clock
//!
//! Storage latencies in this reproduction are *data, not sleeps* (see
//! `airphant-storage`), so serving throughput is also reported on the
//! simulated clock: the server replays the completed queries' simulated
//! latencies through `workers` model servers (each serving one query at a
//! time, every finished query immediately replaced by the next — a closed
//! loop) and derives QPS from that makespan. This keeps throughput
//! numbers deterministic under a seed and independent of the host's core
//! count; wall-clock QPS is reported alongside.

use crate::engine::SearchEngine;
use crate::error::AirphantError;
use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::Result;
use airphant_storage::{SchedulerStats, SimDuration, StorageError};
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing and policy knobs for a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (each runs whole queries).
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue rejects.
    pub queue_capacity: usize,
    /// Per-query deadline on the simulated clock; `None` disables it.
    pub deadline: Option<SimDuration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            deadline: None,
        }
    }
}

impl ServerConfig {
    /// Default configuration (4 workers, queue of 64, no deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the bounded queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-query simulated-clock deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Typed rejection from [`QueryServer::try_submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full — shed load or retry later.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server has shut down and accepts no further queries.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShutDown => write!(f, "query server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A pending query's completion handle.
pub struct Ticket {
    rx: Receiver<Result<SearchResult>>,
}

impl Ticket {
    /// Block until the query completes and return its result. Deadline
    /// violations arrive as [`StorageError::Timeout`].
    pub fn wait(self) -> Result<SearchResult> {
        self.rx
            .recv()
            .unwrap_or_else(|_| panic!("query server worker dropped the reply channel"))
    }
}

struct Job {
    query: Query,
    opts: QueryOptions,
    reply: SyncSender<Result<SearchResult>>,
}

/// State shared between the handle and the worker threads.
struct Shared {
    /// The swappable engine slot: queries clone the current `Arc` under a
    /// read lock and execute unlocked, so [`QueryServer::refresh`] can
    /// install a fresh engine (a reopened
    /// [`SegmentedSearcher`](crate::SegmentedSearcher) after an append or
    /// compaction) with zero downtime — in-flight queries finish on the
    /// generation they started on.
    engine: RwLock<Arc<dyn SearchEngine>>,
    deadline: Option<SimDuration>,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    refreshes: AtomicU64,
    /// Per-completed-query `(lookup wait, end-to-end)` simulated samples.
    samples: Mutex<Vec<(SimDuration, SimDuration)>>,
}

impl Shared {
    /// Snapshot the current engine (one atomic refcount bump; the write
    /// lock is only ever held for the pointer swap in `refresh`).
    fn engine(&self) -> Arc<dyn SearchEngine> {
        self.engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn serve(&self, job: Job) {
        let engine = self.engine();
        // Contain engine panics: the worker must survive (a 1-worker pool
        // would otherwise stop serving and strand every queued ticket)
        // and the caller gets an error, not a dropped reply channel.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute(&job.query, &job.opts)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(AirphantError::Storage(StorageError::Io(
                std::io::Error::other(format!("query execution panicked: {msg}")),
            )))
        });
        let reply = match outcome {
            Ok(result) => {
                let total = result.trace.total();
                // The worker spent this simulated time whether or not the
                // query beat its deadline, so timed-out queries stay in
                // the samples: percentiles report the true served tail
                // (not censored at the deadline) and the closed-loop
                // makespan charges the wasted service time.
                self.samples
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((result.trace.wait(), total));
                match self.deadline {
                    Some(deadline) if total > deadline => {
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                        Err(AirphantError::Storage(StorageError::Timeout {
                            name: format!("query missed its {deadline} deadline (took {total})"),
                        }))
                    }
                    _ => {
                        self.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(result)
                    }
                }
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        };
        // The ticket may have been dropped; serving already happened.
        let _ = job.reply.send(reply);
    }
}

/// Aggregate serving statistics (see the module docs for the throughput
/// model).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Worker-pool size the numbers are modeled for.
    pub workers: usize,
    /// Queries answered successfully.
    pub completed: u64,
    /// Submissions rejected by backpressure ([`SubmitError::QueueFull`]).
    pub rejected: u64,
    /// Queries past the simulated deadline.
    pub timed_out: u64,
    /// Queries that failed with an engine/storage error.
    pub failed: u64,
    /// Engine swaps installed via [`QueryServer::refresh`].
    pub refreshes: u64,
    /// Simulated closed-loop makespan of every *served* query — including
    /// timed-out ones, whose service time the workers still spent.
    pub sim_makespan: SimDuration,
    /// Successfully completed queries per simulated second (timed-out
    /// service time counts against the makespan but not the numerator).
    pub qps_sim: f64,
    /// Completed queries per wall-clock second (host-dependent).
    pub qps_wall: f64,
    /// Median simulated lookup wait, ms (all served queries).
    pub wait_p50_ms: f64,
    /// 95th-percentile simulated lookup wait, ms.
    pub wait_p95_ms: f64,
    /// 99th-percentile simulated lookup wait, ms.
    pub wait_p99_ms: f64,
    /// Median simulated end-to-end latency, ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile simulated end-to-end latency, ms.
    pub latency_p95_ms: f64,
    /// 99th-percentile simulated end-to-end latency, ms.
    pub latency_p99_ms: f64,
    /// `(hits, misses)` of the shared cache, when one is attached.
    pub cache: Option<(u64, u64)>,
    /// Counters of the shared I/O scheduler
    /// ([`CoalescingStore`](airphant_storage::CoalescingStore)), when one
    /// is attached: merged ranges, fused cross-query batches, bytes saved.
    pub scheduler: Option<SchedulerStats>,
}

impl ServerStats {
    /// Shared-cache hit rate in `[0, 1]`, when a cache is attached and saw
    /// traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.and_then(|(h, m)| {
            let total = h + m;
            (total > 0).then(|| h as f64 / total as f64)
        })
    }
}

/// Nearest-rank percentile of an ascending sample, `q ∈ [0, 1]`.
fn percentile(sorted: &[SimDuration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_millis_f64()
}

/// Closed-loop makespan of serving `latencies` on `workers` model servers:
/// each query goes to the earliest-free server, in completion order.
fn closed_loop_makespan(latencies: &[SimDuration], workers: usize) -> SimDuration {
    let workers = workers.max(1);
    // Min-heap of server free times (BinaryHeap is a max-heap: reverse).
    let mut free: BinaryHeap<std::cmp::Reverse<SimDuration>> = (0..workers)
        .map(|_| std::cmp::Reverse(SimDuration::ZERO))
        .collect();
    let mut makespan = SimDuration::ZERO;
    for &lat in latencies {
        let std::cmp::Reverse(t) = free.pop().expect("workers >= 1");
        let done = t + lat;
        makespan = makespan.max(done);
        free.push(std::cmp::Reverse(done));
    }
    makespan
}

/// A fixed pool of query workers over one shared engine.
///
/// Dropping the server shuts it down: the queue closes and the workers are
/// joined (pending queries are still served first).
pub struct QueryServer {
    shared: Arc<Shared>,
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    started: Instant,
    cache_stats: Option<Box<dyn Fn() -> (u64, u64) + Send + Sync>>,
    scheduler_stats: Option<Box<dyn Fn() -> SchedulerStats + Send + Sync>>,
    config_workers: usize,
}

impl QueryServer {
    /// Spawn the worker pool over `engine`.
    pub fn start(engine: Arc<dyn SearchEngine>, config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "a server needs at least one worker");
        assert!(config.queue_capacity >= 1, "queue capacity must be >= 1");
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            deadline: config.deadline,
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("airphant-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue; the
                        // query itself runs unlocked, so workers overlap.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => shared.serve(job),
                            Err(_) => return, // queue closed: shut down
                        }
                    })
                    .expect("spawn query worker")
            })
            .collect();
        QueryServer {
            shared,
            sender: Some(tx),
            workers,
            queue_capacity: config.queue_capacity,
            started: Instant::now(),
            cache_stats: None,
            scheduler_stats: None,
            config_workers: config.workers,
        }
    }

    /// Attach a shared-cache counter source (e.g.
    /// `move || cache.hit_stats()`) so [`ServerStats::cache`] is populated.
    pub fn with_cache_stats(
        mut self,
        stats: impl Fn() -> (u64, u64) + Send + Sync + 'static,
    ) -> Self {
        self.cache_stats = Some(Box::new(stats));
        self
    }

    /// Attach a shared I/O-scheduler counter source (e.g.
    /// `move || scheduler.stats()`) so [`ServerStats::scheduler`] is
    /// populated.
    pub fn with_scheduler_stats(
        mut self,
        stats: impl Fn() -> SchedulerStats + Send + Sync + 'static,
    ) -> Self {
        self.scheduler_stats = Some(Box::new(stats));
        self
    }

    /// Swap in a fresh engine with zero downtime: queries already
    /// executing finish on the engine they started with; every query
    /// dequeued after this call runs on `engine`. This is the live-index
    /// refresh hook — after a
    /// [`SegmentManager::append`](crate::SegmentManager::append) or a
    /// [`Compactor::compact`](crate::Compactor::compact), reopen the
    /// segmented searcher and install it here instead of restarting the
    /// server.
    pub fn refresh(&self, engine: Arc<dyn SearchEngine>) {
        *self
            .shared
            .engine
            .write()
            .unwrap_or_else(|e| e.into_inner()) = engine;
        self.shared.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// The engine currently serving queries (the latest
    /// [`QueryServer::refresh`], or the one passed to
    /// [`QueryServer::start`]).
    pub fn engine(&self) -> Arc<dyn SearchEngine> {
        self.shared.engine()
    }

    /// Enqueue a query without blocking. A full queue rejects with
    /// [`SubmitError::QueueFull`] and counts toward
    /// [`ServerStats::rejected`].
    pub fn try_submit(
        &self,
        query: Query,
        opts: QueryOptions,
    ) -> std::result::Result<Ticket, SubmitError> {
        let (reply, rx) = sync_channel(1);
        let job = Job { query, opts, reply };
        let sender = self.sender.as_ref().ok_or(SubmitError::ShutDown)?;
        match sender.try_send(job) {
            Ok(()) => Ok(Ticket { rx }),
            Err(TrySendError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull {
                    capacity: self.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShutDown),
        }
    }

    /// Enqueue a query, blocking while the queue is full (closed-loop
    /// submission: the caller inherits the backpressure).
    pub fn submit(
        &self,
        query: Query,
        opts: QueryOptions,
    ) -> std::result::Result<Ticket, SubmitError> {
        let (reply, rx) = sync_channel(1);
        let job = Job { query, opts, reply };
        let sender = self.sender.as_ref().ok_or(SubmitError::ShutDown)?;
        sender.send(job).map_err(|_| SubmitError::ShutDown)?;
        Ok(Ticket { rx })
    }

    /// Submit and wait: the blocking convenience used by tests and the
    /// CLI.
    pub fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        self.submit(query.clone(), opts.clone())
            .expect("server alive while the handle is held")
            .wait()
    }

    /// Snapshot the aggregate serving statistics.
    pub fn stats(&self) -> ServerStats {
        let samples = self
            .shared
            .samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut waits: Vec<SimDuration> = samples.iter().map(|&(w, _)| w).collect();
        let mut totals: Vec<SimDuration> = samples.iter().map(|&(_, t)| t).collect();
        waits.sort();
        totals.sort();
        let completed = self.shared.completed.load(Ordering::Relaxed);
        let sim_makespan = closed_loop_makespan(&totals, self.config_workers);
        let sim_secs = sim_makespan.as_secs_f64();
        let wall_secs = self.started.elapsed().as_secs_f64();
        ServerStats {
            workers: self.config_workers,
            completed,
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            refreshes: self.shared.refreshes.load(Ordering::Relaxed),
            sim_makespan,
            qps_sim: if sim_secs > 0.0 {
                completed as f64 / sim_secs
            } else {
                0.0
            },
            qps_wall: if wall_secs > 0.0 {
                completed as f64 / wall_secs
            } else {
                0.0
            },
            wait_p50_ms: percentile(&waits, 0.50),
            wait_p95_ms: percentile(&waits, 0.95),
            wait_p99_ms: percentile(&waits, 0.99),
            latency_p50_ms: percentile(&totals, 0.50),
            latency_p95_ms: percentile(&totals, 0.95),
            latency_p99_ms: percentile(&totals, 0.99),
            cache: self.cache_stats.as_ref().map(|f| f()),
            scheduler: self.scheduler_stats.as_ref().map(|f| f()),
        }
    }

    /// Drain the queue, stop the workers, and return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        self.sender.take(); // close the queue: workers drain then exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.join_workers();
    }
}

// The server handle itself can be shared (e.g. one handle per frontend
// thread submitting into the same pool).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryServer>();
    assert_send_sync::<ServerStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use crate::Searcher;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{
        BatchFetch, CachedStore, CoalescingStore, Fetched, InMemoryStore, LatencyModel,
        ObjectStore, RangeRequest, SimulatedCloudStore,
    };
    use bytes::Bytes;
    use std::sync::Condvar;

    fn build_index(store: Arc<dyn ObjectStore>, lines: &[&str]) {
        let blob = lines.join("\n");
        store.put("c/blob-0", Bytes::from(blob)).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/blob-0".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(128)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
    }

    fn lines(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("word{i} shared{} common", i % 5))
            .collect()
    }

    #[test]
    fn pooled_results_match_direct_execution() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs = lines(60);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(store.clone(), &refs);
        let searcher = Arc::new(Searcher::open(store, "idx").unwrap());
        let server = QueryServer::start(
            searcher.clone(),
            ServerConfig::new().with_workers(4).with_queue_capacity(16),
        );
        for i in 0..30 {
            let q = Query::and([
                Query::term(format!("word{i}")),
                Query::term(format!("shared{}", i % 5)),
            ]);
            let served = server.execute(&q, &QueryOptions::new()).unwrap();
            let direct = searcher.execute(&q, &QueryOptions::new()).unwrap();
            let texts = |r: &SearchResult| {
                let mut v: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
                v.sort();
                v.join("|")
            };
            assert_eq!(texts(&served), texts(&direct), "query {i}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 30);
        assert_eq!(stats.rejected + stats.timed_out + stats.failed, 0);
    }

    /// A store whose reads park on a gate until the test opens it — makes
    /// queue-full states deterministic. Flags when a read has parked so
    /// tests can handshake instead of sleeping.
    struct GatedStore<S> {
        inner: S,
        gate: Mutex<bool>,
        cv: Condvar,
        parked: Mutex<bool>,
        parked_cv: Condvar,
    }

    impl<S> GatedStore<S> {
        fn new(inner: S) -> Self {
            GatedStore {
                inner,
                gate: Mutex::new(false),
                cv: Condvar::new(),
                parked: Mutex::new(false),
                parked_cv: Condvar::new(),
            }
        }

        fn open(&self) {
            *self.gate.lock().unwrap() = true;
            self.cv.notify_all();
        }

        fn wait_until_parked(&self) {
            let mut parked = self.parked.lock().unwrap();
            while !*parked {
                parked = self.parked_cv.wait(parked).unwrap();
            }
        }

        fn block(&self) {
            {
                *self.parked.lock().unwrap() = true;
                self.parked_cv.notify_all();
            }
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }
    }

    impl<S: ObjectStore> ObjectStore for GatedStore<S> {
        fn put(&self, name: &str, data: Bytes) -> airphant_storage::Result<()> {
            self.inner.put(name, data)
        }
        fn get(&self, name: &str) -> airphant_storage::Result<Fetched> {
            self.inner.get(name)
        }
        fn get_range(&self, name: &str, o: u64, l: u64) -> airphant_storage::Result<Fetched> {
            self.block();
            self.inner.get_range(name, o, l)
        }
        fn get_ranges(&self, reqs: &[RangeRequest]) -> airphant_storage::Result<BatchFetch> {
            self.block();
            self.inner.get_ranges(reqs)
        }
        fn size_of(&self, name: &str) -> airphant_storage::Result<u64> {
            self.inner.size_of(name)
        }
        fn list(&self, prefix: &str) -> airphant_storage::Result<Vec<String>> {
            self.inner.list(prefix)
        }
        fn delete(&self, name: &str) -> airphant_storage::Result<()> {
            self.inner.delete(name)
        }
    }

    #[test]
    fn full_queue_rejects_with_typed_error() {
        let plain: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs = lines(10);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        build_index(plain.clone(), &refs);
        // Open the searcher over the *ungated* store (init must not park),
        // then serve through a gate that stalls the single worker.
        let gated = Arc::new(GatedStore::new(plain.clone()));
        let searcher = {
            // Re-point the searcher's store at the gated stack.
            Arc::new(Searcher::open(gated.clone() as Arc<dyn ObjectStore>, "idx").unwrap())
        };
        let server = QueryServer::start(
            searcher,
            ServerConfig::new().with_workers(1).with_queue_capacity(2),
        );
        // One query occupies the worker (parked on the gate); two fill the
        // queue; the next must be rejected with the typed error.
        let mut tickets = Vec::new();
        let mut accepted = 0;
        let mut rejected = None;
        for i in 0..8 {
            match server.try_submit(Query::term(format!("word{}", i % 10)), QueryOptions::new()) {
                Ok(t) => {
                    accepted += 1;
                    tickets.push(t);
                }
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
            // Handshake: only count the worker as occupied once it has
            // actually parked on the gate, so the tallies below are
            // deterministic (1 in flight + 2 queued) on any scheduler.
            if i == 0 {
                gated.wait_until_parked();
            }
        }
        assert_eq!(rejected, Some(SubmitError::QueueFull { capacity: 2 }));
        assert_eq!(accepted, 3, "1 serving + 2 queued");
        gated.open();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn wait_on_open_gate_is_not_required_for_shutdown() {
        // Dropping the server with no traffic must join cleanly.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(store.clone(), &["alpha beta"]);
        let searcher = Arc::new(Searcher::open(store, "idx").unwrap());
        let server = QueryServer::start(searcher, ServerConfig::new());
        drop(server);
    }

    #[test]
    fn deadline_surfaces_storage_timeout() {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            5,
        ));
        {
            let s: Arc<dyn ObjectStore> = sim.clone();
            let docs = lines(20);
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            build_index(s, &refs);
        }
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        // gcs-like round trips are ~45 ms; a 1 ms deadline always trips.
        let server = QueryServer::start(
            searcher,
            ServerConfig::new()
                .with_workers(2)
                .with_deadline(SimDuration::from_millis(1)),
        );
        let err = server
            .execute(&Query::term("word3"), &QueryOptions::new())
            .unwrap_err();
        assert!(
            matches!(err, AirphantError::Storage(StorageError::Timeout { .. })),
            "expected Timeout, got {err:?}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.completed, 0);
        // The timed-out query's true latency stays in the samples: the
        // tail is not censored at the deadline and the worker's spent
        // service time still shows up in the makespan.
        assert!(stats.latency_p99_ms > 1.0, "tail must exceed the deadline");
        assert!(stats.sim_makespan > SimDuration::from_millis(1));
    }

    #[test]
    fn stats_percentiles_and_throughput_model() {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            9,
        ));
        {
            let s: Arc<dyn ObjectStore> = sim.clone();
            let docs = lines(40);
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            build_index(s, &refs);
        }
        // The full serving stack of ADR-005: cloud → scheduler → cache.
        let scheduler = Arc::new(CoalescingStore::new(sim.clone() as Arc<dyn ObjectStore>));
        let cache = Arc::new(CachedStore::new(
            scheduler.clone() as Arc<dyn ObjectStore>,
            1 << 20,
        ));
        let searcher =
            Arc::new(Searcher::open(cache.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let cache_for_stats = cache.clone();
        let scheduler_for_stats = scheduler.clone();
        let server = QueryServer::start(
            searcher,
            ServerConfig::new().with_workers(4).with_queue_capacity(32),
        )
        .with_cache_stats(move || cache_for_stats.hit_stats())
        .with_scheduler_stats(move || scheduler_for_stats.stats());
        let tickets: Vec<Ticket> = (0..40)
            .map(|i| {
                server
                    .submit(Query::term(format!("word{}", i % 40)), QueryOptions::new())
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 40);
        assert!(stats.qps_sim > 0.0);
        assert!(stats.latency_p50_ms > 0.0);
        assert!(stats.latency_p50_ms <= stats.latency_p95_ms);
        assert!(stats.latency_p95_ms <= stats.latency_p99_ms);
        assert!(stats.wait_p50_ms <= stats.wait_p99_ms);
        assert!(stats.cache.is_some());
        assert!(stats.cache_hit_rate().is_some());
        // The attached scheduler's counters are plumbed through, and the
        // cache's miss batches did flow through it.
        let sched = stats.scheduler.expect("scheduler stats attached");
        assert!(
            sched.backend_batches > 0,
            "misses flow through the scheduler"
        );
        // The closed-loop model: 4 workers serve 40 queries at least ~4x
        // faster than one worker would (same samples, fewer servers).
        let one = closed_loop_makespan(
            &{
                let samples = server.shared.samples.lock().unwrap().clone();
                let mut totals: Vec<SimDuration> = samples.iter().map(|&(_, t)| t).collect();
                totals.sort();
                totals
            },
            1,
        );
        assert!(
            stats.sim_makespan < one,
            "4 workers {} must beat 1 worker {one}",
            stats.sim_makespan
        );
        drop(server);
    }

    /// Panics on the first query, answers normally afterwards.
    struct PanicOnceEngine {
        inner: Searcher,
        panicked: std::sync::atomic::AtomicBool,
    }

    impl SearchEngine for PanicOnceEngine {
        fn name(&self) -> &'static str {
            "PanicOnce"
        }
        fn lookup(
            &self,
            word: &str,
        ) -> Result<(iou_sketch::PostingsList, airphant_storage::QueryTrace)> {
            self.inner.lookup(word)
        }
        fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("injected engine panic");
            }
            self.inner.execute(query, opts)
        }
        fn index_bytes(&self) -> u64 {
            self.inner.index_usage_bytes()
        }
    }

    #[test]
    fn engine_panic_fails_the_query_but_not_the_worker() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(store.clone(), &["alpha beta", "beta gamma"]);
        let engine = Arc::new(PanicOnceEngine {
            inner: Searcher::open(store, "idx").unwrap(),
            panicked: std::sync::atomic::AtomicBool::new(false),
        });
        // One worker: if the panic killed it, the second query would hang.
        let server = QueryServer::start(engine, ServerConfig::new().with_workers(1));
        let err = server
            .execute(&Query::term("beta"), &QueryOptions::new())
            .unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "caller sees an error, got {err}"
        );
        let ok = server
            .execute(&Query::term("beta"), &QueryOptions::new())
            .unwrap();
        assert_eq!(ok.hits.len(), 2, "the worker survived the panic");
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    fn ms_samples(values: &[u64]) -> Vec<SimDuration> {
        let mut v: Vec<SimDuration> = values
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn percentile_nearest_rank_single_sample() {
        // n = 1: every percentile is the one sample.
        let samples = ms_samples(&[42]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&samples, q), 42.0, "q={q}");
        }
    }

    #[test]
    fn percentile_nearest_rank_two_samples() {
        // n = 2, nearest rank = ceil(q·n) clamped to [1, n]:
        // p50 → rank 1 (the smaller), p95/p99 → rank 2 (the larger).
        let samples = ms_samples(&[10, 90]);
        assert_eq!(percentile(&samples, 0.50), 10.0);
        assert_eq!(percentile(&samples, 0.51), 90.0);
        assert_eq!(percentile(&samples, 0.95), 90.0);
        assert_eq!(percentile(&samples, 0.99), 90.0);
        // q = 0 still returns the minimum (rank clamps up to 1).
        assert_eq!(percentile(&samples, 0.0), 10.0);
    }

    #[test]
    fn percentile_nearest_rank_hundred_samples() {
        // n = 100 with samples 1..=100 ms: rank ceil(q·100) picks value
        // q·100 exactly — p50 = 50, p95 = 95, p99 = 99, p100 = 100.
        let values: Vec<u64> = (1..=100).collect();
        let samples = ms_samples(&values);
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.95), 95.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        // And just over a rank boundary rounds up to the next sample.
        assert_eq!(percentile(&samples, 0.501), 51.0);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn timed_out_queries_stay_in_percentile_samples() {
        // One fast query (hits the deadline) and one slow (misses it):
        // the slow sample must still dominate the p99, not be censored.
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            11,
        ));
        {
            let s: Arc<dyn ObjectStore> = sim.clone();
            let docs = lines(20);
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            build_index(s, &refs);
        }
        let searcher =
            Arc::new(Searcher::open(sim.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let server = QueryServer::start(
            searcher,
            ServerConfig::new()
                .with_workers(1)
                .with_deadline(SimDuration::from_millis(1)),
        );
        for i in 0..5 {
            // gcs-like round trips are ~45 ms: every query times out.
            let err = server
                .execute(&Query::term(format!("word{i}")), &QueryOptions::new())
                .unwrap_err();
            assert!(matches!(
                err,
                AirphantError::Storage(StorageError::Timeout { .. })
            ));
        }
        let stats = server.shutdown();
        assert_eq!(stats.timed_out, 5);
        assert_eq!(stats.completed, 0);
        // All five served latencies are in the samples: p50 as well as
        // p99 reflect the true ~45ms service times, not the 1ms deadline.
        assert!(stats.latency_p50_ms > 10.0);
        assert!(stats.latency_p99_ms >= stats.latency_p50_ms);
    }

    #[test]
    fn refresh_swaps_engine_between_queries() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(store.clone(), &["alpha one", "beta two"]);
        {
            // A second index under another prefix with different docs.
            let blob = "gamma three\nbeta four";
            store.put("c/blob-1", Bytes::from(blob)).unwrap();
            let corpus = Corpus::new(
                store.clone(),
                vec!["c/blob-1".into()],
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            );
            Builder::new(
                AirphantConfig::default()
                    .with_total_bins(128)
                    .with_manual_layers(2)
                    .with_common_fraction(0.0),
            )
            .build(&corpus, "idx2")
            .unwrap();
        }
        let server = QueryServer::start(
            Arc::new(Searcher::open(store.clone(), "idx").unwrap()),
            ServerConfig::new().with_workers(2),
        );
        // Before the refresh: generation 1 answers.
        let r = server
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(server
            .execute(&Query::term("gamma"), &QueryOptions::new())
            .unwrap()
            .hits
            .is_empty());
        // Refresh: no restart, same pool, new engine.
        server.refresh(Arc::new(Searcher::open(store, "idx2").unwrap()));
        let r = server
            .execute(&Query::term("gamma"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(server
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap()
            .hits
            .is_empty());
        let stats = server.shutdown();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn refresh_does_not_disturb_inflight_queries() {
        // A query parked inside the old engine's storage read while the
        // refresh lands must finish on the OLD generation.
        let plain: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        build_index(plain.clone(), &["alpha old-gen"]);
        let gated = Arc::new(GatedStore::new(plain.clone()));
        let old_engine =
            Arc::new(Searcher::open(gated.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
        let server = Arc::new(QueryServer::start(
            old_engine,
            ServerConfig::new().with_workers(1),
        ));
        std::thread::scope(|s| {
            let inflight = {
                let server = server.clone();
                s.spawn(move || {
                    server
                        .execute(&Query::term("alpha"), &QueryOptions::new())
                        .unwrap()
                })
            };
            gated.wait_until_parked();
            // Build a *different* corpus under a fresh prefix and swap it
            // in while the first query is still parked mid-read.
            plain
                .put("c2/blob-0", Bytes::from("alpha new-gen"))
                .unwrap();
            let corpus = Corpus::new(
                plain.clone(),
                vec!["c2/blob-0".into()],
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            );
            Builder::new(
                AirphantConfig::default()
                    .with_total_bins(128)
                    .with_manual_layers(2)
                    .with_common_fraction(0.0),
            )
            .build(&corpus, "idx-new")
            .unwrap();
            server.refresh(Arc::new(Searcher::open(plain.clone(), "idx-new").unwrap()));
            gated.open();
            let old_result = inflight.join().unwrap();
            assert_eq!(old_result.hits.len(), 1);
            assert!(
                old_result.hits[0].text.contains("old-gen"),
                "in-flight query finished on its own generation"
            );
        });
        // The next query runs on the refreshed engine.
        let fresh = server
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap();
        assert!(fresh.hits[0].text.contains("new-gen"));
    }

    #[test]
    fn closed_loop_makespan_is_monotone_in_workers() {
        let latencies: Vec<SimDuration> = (0..100)
            .map(|i| SimDuration::from_millis(40 + (i * 13) % 30))
            .collect();
        let mut prev = SimDuration::from_nanos(u64::MAX);
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let m = closed_loop_makespan(&latencies, workers);
            assert!(m <= prev, "makespan must not grow with workers");
            prev = m;
        }
        assert_eq!(closed_loop_makespan(&[], 4), SimDuration::ZERO);
    }
}
