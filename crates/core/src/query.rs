//! The unified query AST — the single entry point for every kind of
//! lookup Airphant supports.
//!
//! A [`Query`] describes the *whole* predicate up front, which lets the
//! planner ([`crate::plan`]) resolve every term's and gram's superpost
//! pointers from the in-memory MHT and fetch them all in **one**
//! concurrent batch — the paper's single-batch guarantee (§III-C),
//! extended from single keywords to arbitrary boolean/phrase/substring
//! compositions.
//!
//! Semantics follow §IV-F: the query function distributes over the
//! predicate, `Q(⋁_i ⋀_j w_ij) = ⋃_i ⋂_j Q(w_ij)`; substring predicates
//! use the trigram filter-then-verify pipeline; the final document filter
//! restores exactness either way. [`Query::Prefix`] and [`Query::Fuzzy`]
//! atoms are rewritten by the engine into term unions against the
//! segment vocabulary (see `crate::expand`) before planning, so they ride
//! the same single batch.

use crate::error::AirphantError;
use airphant_corpus::{NgramTokenizer, Tokenizer};
use iou_sketch::{levenshtein_within, PostingsList};

/// A composable search predicate.
///
/// The enum is `#[non_exhaustive]`: construct queries through the
/// [`Query::term`]-style constructors and combine them with the fluent
/// [`Query::and`]/[`Query::or`] methods (or the [`Query::all`]/
/// [`Query::any`] variadic forms), and always match with a wildcard arm —
/// future atom kinds are additive, not breaking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Query {
    /// A single keyword (exact token match under the index's tokenizer).
    Term(String),
    /// All words must occur in the document. Evaluated as a conjunction
    /// (the index stores no positions, so a phrase is its word-set AND;
    /// the document filter still sees the full text).
    Phrase(Vec<String>),
    /// All sub-queries must match.
    And(Vec<Query>),
    /// Any sub-query may match.
    Or(Vec<Query>),
    /// The document text contains `pattern` as a case-insensitive
    /// substring. Requires the index to have been built with an
    /// [`NgramTokenizer`] of size `n`; the planner prefilters on the
    /// pattern's `n`-grams and the verify pass does the exact match.
    /// Patterns shorter than `n` fall back to a vocabulary scan when the
    /// segment carries one (see [`Query::Prefix`] for the vocabulary).
    Substring {
        /// The literal substring to find.
        pattern: String,
        /// The gram size the index was built with.
        n: usize,
    },
    /// Some token of the document starts with `term` (exact bytes, no
    /// case folding — like [`Query::Term`]). Resolved against the segment
    /// vocabulary's sorted term list in `O(m log V)` and expanded to the
    /// union of matching terms; requires a vocabulary-bearing (v2)
    /// segment, else [`AirphantError::UnsupportedQuery`].
    Prefix {
        /// The prefix the token must start with.
        term: String,
    },
    /// Some token of the document is within `max_edits` Levenshtein
    /// distance of `term`. Resolved by a Levenshtein-automaton walk over
    /// the segment vocabulary and expanded to the union of matching
    /// terms; requires a vocabulary-bearing (v2) segment.
    Fuzzy {
        /// The target word.
        term: String,
        /// Maximum Levenshtein distance (insert/delete/substitute).
        max_edits: u32,
    },
}

impl Query {
    /// A single-keyword query.
    pub fn term(word: impl Into<String>) -> Self {
        Query::Term(word.into())
    }

    /// A phrase query (conjunction of its words).
    pub fn phrase<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query::Phrase(words.into_iter().map(Into::into).collect())
    }

    /// Conjunction of sub-queries (variadic form; see also the fluent
    /// [`Query::and`]).
    pub fn all(queries: impl IntoIterator<Item = Query>) -> Self {
        Query::And(queries.into_iter().collect())
    }

    /// Disjunction of sub-queries (variadic form; see also the fluent
    /// [`Query::or`]).
    pub fn any(queries: impl IntoIterator<Item = Query>) -> Self {
        Query::Or(queries.into_iter().collect())
    }

    /// A literal-substring query over an `n`-gram index. Matching is
    /// case-insensitive, so the pattern is stored case-folded (a
    /// directly constructed [`Query::Substring`] with uppercase letters
    /// behaves identically, just without the pre-folding).
    pub fn substring(pattern: impl Into<String>, n: usize) -> Self {
        Query::Substring {
            pattern: pattern.into().to_ascii_lowercase(),
            n,
        }
    }

    /// A prefix query: matches documents with a token starting with
    /// `term`. No case folding — prefixes compare exact bytes against the
    /// vocabulary, like [`Query::term`].
    pub fn prefix(term: impl Into<String>) -> Self {
        Query::Prefix { term: term.into() }
    }

    /// A fuzzy query: matches documents with a token within `max_edits`
    /// Levenshtein distance of `term`. No case folding.
    pub fn fuzzy(term: impl Into<String>, max_edits: u32) -> Self {
        Query::Fuzzy {
            term: term.into(),
            max_edits,
        }
    }

    /// Fluent conjunction: `a.and(b)` ≡ `Query::all([a, b])`, flattening
    /// a left-hand `And` so chains stay shallow.
    pub fn and(self, other: impl Into<Query>) -> Self {
        match self {
            Query::And(mut qs) => {
                qs.push(other.into());
                Query::And(qs)
            }
            q => Query::And(vec![q, other.into()]),
        }
    }

    /// Fluent disjunction: `a.or(b)` ≡ `Query::any([a, b])`, flattening a
    /// left-hand `Or`.
    pub fn or(self, other: impl Into<Query>) -> Self {
        match self {
            Query::Or(mut qs) => {
                qs.push(other.into());
                Query::Or(qs)
            }
            q => Query::Or(vec![q, other.into()]),
        }
    }

    /// Start a [`QueryBuilder`] with this query and a top-k bound:
    /// `Query::term("x").and(Query::prefix("ty")).top_k(10)`.
    pub fn top_k(self, k: usize) -> QueryBuilder {
        QueryBuilder::from(self).top_k(k)
    }

    /// Start a [`QueryBuilder`] with this query and explicit options.
    pub fn with_options(self, opts: QueryOptions) -> QueryBuilder {
        QueryBuilder { query: self, opts }
    }

    /// All distinct keyword terms mentioned by the query (Term and Phrase
    /// words), in first-appearance order. Substring grams are not terms;
    /// see [`Query::atoms`].
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Query::Term(w) => {
                if !out.contains(&w.as_str()) {
                    out.push(w);
                }
            }
            Query::Phrase(ws) => {
                for w in ws {
                    if !out.contains(&w.as_str()) {
                        out.push(w);
                    }
                }
            }
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_terms(out);
                }
            }
            Query::Substring { .. } | Query::Prefix { .. } | Query::Fuzzy { .. } => {}
        }
    }

    /// Every distinct index lookup key the query needs — terms, phrase
    /// words, and substring grams — in first-appearance order. This is the
    /// planner's fetch list: resolving each atom's superpost pointers and
    /// batching them is what keeps any query at one lookup round trip.
    ///
    /// Fails with [`AirphantError::PatternTooShort`] if a substring
    /// pattern is shorter than its gram size (it could not be prefiltered
    /// and would silently degrade to a full scan).
    pub fn atoms(&self) -> crate::Result<Vec<String>> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out)?;
        Ok(out)
    }

    fn collect_atoms(&self, out: &mut Vec<String>) -> crate::Result<()> {
        let push = |w: &str, out: &mut Vec<String>| {
            if !out.iter().any(|have| have == w) {
                out.push(w.to_owned());
            }
        };
        match self {
            Query::Term(w) => push(w, out),
            Query::Phrase(ws) => {
                for w in ws {
                    push(w, out);
                }
            }
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_atoms(out)?;
                }
            }
            Query::Substring { pattern, n } => {
                for gram in substring_grams(pattern, *n)? {
                    push(&gram, out);
                }
            }
            Query::Prefix { term } => {
                return Err(AirphantError::UnsupportedQuery {
                    reason: format!(
                        "prefix atom {term:?} must be expanded against an index vocabulary \
                         before planning"
                    ),
                })
            }
            Query::Fuzzy { term, .. } => {
                return Err(AirphantError::UnsupportedQuery {
                    reason: format!(
                        "fuzzy atom {term:?} must be expanded against an index vocabulary \
                         before planning"
                    ),
                })
            }
        }
        Ok(())
    }

    /// Whether the engine must rewrite this query against the segment
    /// vocabulary before planning: any Prefix or Fuzzy node, or a
    /// Substring whose pattern is shorter than its gram size (but not
    /// empty — empty patterns stay a typed [`AirphantError::PatternTooShort`]).
    pub(crate) fn needs_expansion(&self) -> bool {
        match self {
            Query::Prefix { .. } | Query::Fuzzy { .. } => true,
            Query::Substring { pattern, n } => {
                let m = pattern.chars().count();
                m > 0 && m < *n
            }
            Query::And(qs) | Query::Or(qs) => qs.iter().any(Query::needs_expansion),
            Query::Term(_) | Query::Phrase(_) => false,
        }
    }

    /// Evaluate the query over per-atom postings (the `⋃⋂Q(w)` identity).
    /// Unknown atoms resolve to the empty list. Substring patterns too
    /// short to carry grams evaluate to the empty list (use
    /// [`Query::atoms`] up front for the typed error).
    pub fn evaluate(&self, postings_of: &dyn Fn(&str) -> PostingsList) -> PostingsList {
        match self {
            Query::Term(w) => postings_of(w),
            Query::Phrase(ws) => intersect_words(ws.iter().map(String::as_str), postings_of),
            Query::And(qs) => {
                let mut lists = qs.iter().map(|q| q.evaluate(postings_of));
                let first = lists.next().unwrap_or_default();
                lists.fold(first, |acc, l| {
                    if acc.is_empty() {
                        acc
                    } else {
                        acc.intersect(&l)
                    }
                })
            }
            Query::Or(qs) => qs
                .iter()
                .map(|q| q.evaluate(postings_of))
                .fold(PostingsList::new(), |acc, l| acc.union(&l)),
            Query::Substring { pattern, n } => match substring_grams(pattern, *n) {
                Ok(grams) => intersect_words(grams.iter().map(String::as_str), postings_of),
                Err(_) => PostingsList::new(),
            },
            // Unexpanded vocabulary atoms carry no index keys; like
            // too-short substrings they evaluate empty (atoms() reports
            // the typed error up front).
            Query::Prefix { .. } | Query::Fuzzy { .. } => PostingsList::new(),
        }
    }

    /// Whether a document satisfies the query, given its exact word set
    /// and raw text. This is the verify-phase predicate that restores
    /// perfect precision after the statistical prefilter.
    ///
    /// [`Query::Prefix`] and [`Query::Fuzzy`] need the document's *token
    /// list*, which a membership oracle cannot enumerate — they match
    /// nothing through this view. Use [`Query::matches_tokens`] when the
    /// tokens are at hand (the engine always verifies with the expanded
    /// query, so it never hits this limitation).
    pub fn matches_doc(&self, has_word: &dyn Fn(&str) -> bool, text: &str) -> bool {
        // The case-folded text is shared across every Substring node of
        // the AST and only computed when one is actually reached.
        let mut lowered: Option<String> = None;
        self.matches_inner(has_word, None, text, &mut lowered)
    }

    /// Whether a document satisfies the query, given its token list and
    /// raw text — the full-semantics predicate, covering Prefix and Fuzzy
    /// atoms too. This is what linear-scan oracles should use.
    pub fn matches_tokens(&self, tokens: &[String], text: &str) -> bool {
        let has_word = |w: &str| tokens.iter().any(|t| t == w);
        let mut lowered: Option<String> = None;
        self.matches_inner(&has_word, Some(tokens), text, &mut lowered)
    }

    fn matches_inner(
        &self,
        has_word: &dyn Fn(&str) -> bool,
        tokens: Option<&[String]>,
        text: &str,
        lowered: &mut Option<String>,
    ) -> bool {
        match self {
            Query::Term(w) => has_word(w),
            // Empty groups match NOTHING, mirroring `evaluate` (which
            // resolves them to the empty postings list). Were an empty
            // AND vacuously true here, `Or([And([]), term])` would let
            // every sketch false positive through the verify pass.
            Query::Phrase(ws) => !ws.is_empty() && ws.iter().all(|w| has_word(w)),
            Query::And(qs) => {
                !qs.is_empty()
                    && qs
                        .iter()
                        .all(|q| q.matches_inner(has_word, tokens, text, lowered))
            }
            Query::Or(qs) => qs
                .iter()
                .any(|q| q.matches_inner(has_word, tokens, text, lowered)),
            Query::Substring { pattern, .. } => {
                let text_l = lowered.get_or_insert_with(|| text.to_ascii_lowercase());
                if pattern.bytes().any(|b| b.is_ascii_uppercase()) {
                    text_l.contains(&pattern.to_ascii_lowercase())
                } else {
                    text_l.contains(pattern.as_str())
                }
            }
            Query::Prefix { term } => tokens
                .map(|ts| ts.iter().any(|t| t.starts_with(term.as_str())))
                .unwrap_or(false),
            Query::Fuzzy { term, max_edits } => tokens
                .map(|ts| ts.iter().any(|t| levenshtein_within(term, t, *max_edits)))
                .unwrap_or(false),
        }
    }

    /// Whether any node of the query is a [`Query::Substring`].
    pub fn has_substring(&self) -> bool {
        match self {
            Query::Substring { .. } => true,
            Query::And(qs) | Query::Or(qs) => qs.iter().any(Query::has_substring),
            _ => false,
        }
    }

    /// The single word of a bare `Term` query, if that is the whole query.
    /// (The planner uses this to keep the legacy top-k sampled fetch on
    /// the single-keyword fast path.)
    pub fn as_single_term(&self) -> Option<&str> {
        match self {
            Query::Term(w) => Some(w),
            _ => None,
        }
    }
}

impl From<&str> for Query {
    /// A bare string is a [`Query::term`] — lets fluent chains read as
    /// `Query::term("error").and("disk")`.
    fn from(word: &str) -> Self {
        Query::term(word)
    }
}

impl From<String> for Query {
    fn from(word: String) -> Self {
        Query::term(word)
    }
}

fn intersect_words<'a>(
    words: impl Iterator<Item = &'a str>,
    postings_of: &dyn Fn(&str) -> PostingsList,
) -> PostingsList {
    let mut acc: Option<PostingsList> = None;
    for w in words {
        let next = match acc {
            Some(prev) if prev.is_empty() => return prev,
            Some(prev) => prev.intersect(&postings_of(w)),
            None => postings_of(w),
        };
        acc = Some(next);
    }
    acc.unwrap_or_default()
}

/// The distinct, sorted `n`-grams of a substring pattern, or
/// [`AirphantError::PatternTooShort`] when the pattern cannot be
/// prefiltered (`pattern` shorter than `n`, or `n == 0`).
pub(crate) fn substring_grams(pattern: &str, n: usize) -> crate::Result<Vec<String>> {
    if n == 0 || pattern.chars().count() < n {
        return Err(AirphantError::PatternTooShort {
            pattern: pattern.to_owned(),
            n,
        });
    }
    let mut grams = NgramTokenizer::new(n).tokens(pattern);
    grams.sort_unstable();
    grams.dedup();
    debug_assert!(!grams.is_empty(), "pattern of >= n chars yields grams");
    Ok(grams)
}

/// Per-query execution options.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOptions {
    /// Return at most this many hits. For single-term queries the planner
    /// uses the paper's sampled fetch (Equation 6) to pull far fewer
    /// candidate documents; compound queries fetch all candidates and
    /// truncate after the verify pass.
    pub top_k: Option<usize>,
    /// Override the index's top-K failure probability δ (Equation 6).
    pub delta: Option<f64>,
    /// Capture the per-phase latency trace (on by default). When off, the
    /// returned [`crate::SearchResult::trace`] is empty.
    pub capture_trace: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            top_k: None,
            delta: None,
            capture_trace: true,
        }
    }
}

impl QueryOptions {
    /// Default options (no top-k bound, trace captured).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the result set to `k` hits.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Set an optional top-k bound (`None` keeps all hits).
    pub fn with_top_k(mut self, k: Option<usize>) -> Self {
        self.top_k = k;
        self
    }

    /// Override the sampling failure probability δ.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Skip trace capture.
    pub fn without_trace(mut self) -> Self {
        self.capture_trace = false;
        self
    }

    /// Set an optional δ override (`None` keeps the index default).
    pub fn with_delta(mut self, delta: Option<f64>) -> Self {
        self.delta = delta;
        self
    }

    /// Set trace capture explicitly.
    pub fn with_trace(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }
}

/// A query paired with its execution options, built fluently:
///
/// ```
/// use airphant::{Query, QueryBuilder};
/// let built = Query::term("error").and(Query::prefix("dis")).top_k(10);
/// let (query, opts) = built.into_parts();
/// assert_eq!(opts.top_k, Some(10));
/// assert!(matches!(query, Query::And(_)));
/// ```
///
/// Pass the parts to any engine's `execute(&query, &opts)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBuilder {
    query: Query,
    opts: QueryOptions,
}

impl QueryBuilder {
    /// Wrap a query with default options.
    pub fn new(query: impl Into<Query>) -> Self {
        QueryBuilder {
            query: query.into(),
            opts: QueryOptions::new(),
        }
    }

    /// AND another predicate onto the query.
    pub fn and(mut self, other: impl Into<Query>) -> Self {
        self.query = self.query.and(other);
        self
    }

    /// OR another predicate onto the query.
    pub fn or(mut self, other: impl Into<Query>) -> Self {
        self.query = self.query.or(other);
        self
    }

    /// Bound the result set to `k` hits.
    pub fn top_k(mut self, k: usize) -> Self {
        self.opts = self.opts.top_k(k);
        self
    }

    /// Override the sampling failure probability δ.
    pub fn delta(mut self, delta: f64) -> Self {
        self.opts = self.opts.delta(delta);
        self
    }

    /// Skip trace capture.
    pub fn without_trace(mut self) -> Self {
        self.opts = self.opts.without_trace();
        self
    }

    /// The query built so far.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The options built so far.
    pub fn options(&self) -> &QueryOptions {
        &self.opts
    }

    /// Split into the `(query, options)` pair engines execute.
    pub fn into_parts(self) -> (Query, QueryOptions) {
        (self.query, self.opts)
    }
}

impl From<Query> for QueryBuilder {
    fn from(query: Query) -> Self {
        QueryBuilder::new(query)
    }
}

impl From<QueryBuilder> for Query {
    fn from(b: QueryBuilder) -> Self {
        b.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iou_sketch::PostingsList;

    #[test]
    fn constructors_build_expected_shapes() {
        let q = Query::all([
            Query::term("a"),
            Query::any([Query::term("b"), Query::phrase(["c", "d"])]),
            Query::substring("abc", 3),
        ]);
        assert_eq!(
            q.terms(),
            vec!["a", "b", "c", "d"],
            "terms skip substring grams"
        );
        assert!(q.has_substring());
        assert_eq!(
            q.atoms().unwrap(),
            vec!["a", "b", "c", "d", "abc"],
            "atoms include grams"
        );
    }

    #[test]
    fn atoms_deduplicate_across_branches() {
        let q = Query::any([
            Query::term("x"),
            Query::all([Query::term("x"), Query::term("y")]),
            Query::phrase(["y", "z"]),
        ]);
        assert_eq!(q.atoms().unwrap(), vec!["x", "y", "z"]);
    }

    #[test]
    fn fluent_chain_builds_flattened_ast() {
        let q = Query::term("a").and("b").and(Query::prefix("c"));
        assert_eq!(
            q,
            Query::And(vec![Query::term("a"), Query::term("b"), Query::prefix("c"),])
        );
        let q = Query::term("a").or("b").or("c");
        assert!(matches!(&q, Query::Or(qs) if qs.len() == 3));
    }

    #[test]
    fn builder_carries_query_and_options() {
        let built = Query::term("x").and(Query::prefix("ty")).top_k(10);
        assert_eq!(built.options().top_k, Some(10));
        let (query, opts) = built.delta(1e-4).without_trace().into_parts();
        assert_eq!(
            query,
            Query::term("x").and(Query::prefix("ty")),
            "options chaining leaves the query alone"
        );
        assert_eq!(opts.delta, Some(1e-4));
        assert!(!opts.capture_trace);
    }

    #[test]
    fn unexpanded_vocab_atoms_are_typed_errors() {
        for q in [Query::prefix("ty"), Query::fuzzy("disk", 1)] {
            assert!(
                matches!(q.atoms(), Err(AirphantError::UnsupportedQuery { .. })),
                "{q:?}"
            );
            assert!(q.needs_expansion());
            assert!(q.evaluate(&|_| PostingsList::from_doc_ids(&[1])).is_empty());
        }
        let nested = Query::term("ok").and(Query::fuzzy("disk", 1));
        assert!(nested.needs_expansion());
        assert!(matches!(
            nested.atoms(),
            Err(AirphantError::UnsupportedQuery { .. })
        ));
    }

    #[test]
    fn short_but_nonempty_substring_needs_expansion() {
        assert!(Query::substring("ab", 3).needs_expansion());
        assert!(!Query::substring("abc", 3).needs_expansion());
        // Empty patterns and n == 0 stay hard errors, not fallbacks.
        assert!(!Query::substring("", 3).needs_expansion());
        assert!(!Query::substring("abc", 0).needs_expansion());
    }

    #[test]
    fn matches_tokens_covers_prefix_and_fuzzy() {
        let tokens: Vec<String> = ["error", "disk", "sda1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let text = "error disk sda1";
        assert!(Query::prefix("dis").matches_tokens(&tokens, text));
        assert!(Query::prefix("disk").matches_tokens(&tokens, text));
        assert!(!Query::prefix("disko").matches_tokens(&tokens, text));
        assert!(Query::fuzzy("dusk", 1).matches_tokens(&tokens, text));
        assert!(!Query::fuzzy("dusk", 0).matches_tokens(&tokens, text));
        let q = Query::term("error").and(Query::prefix("sd").or(Query::fuzzy("nope", 1)));
        assert!(q.matches_tokens(&tokens, text));
        // Through the word-oracle view they match nothing (documented).
        let has = |w: &str| tokens.iter().any(|t| t == w);
        assert!(!Query::prefix("dis").matches_doc(&has, text));
        assert!(!Query::fuzzy("dusk", 1).matches_doc(&has, text));
    }

    #[test]
    fn substring_atoms_are_sorted_distinct_grams() {
        let q = Query::substring("abab", 3);
        assert_eq!(q.atoms().unwrap(), vec!["aba", "bab"]);
        // Case-folded like the NgramTokenizer at build time.
        let q = Query::substring("AbA", 3);
        assert_eq!(q.atoms().unwrap(), vec!["aba"]);
    }

    #[test]
    fn short_pattern_is_a_typed_error() {
        for (pattern, n) in [("ab", 3), ("", 3), ("abc", 0)] {
            match Query::substring(pattern, n).atoms() {
                Err(AirphantError::PatternTooShort { pattern: p, n: m }) => {
                    assert_eq!(p, pattern);
                    assert_eq!(m, n);
                }
                other => panic!("expected PatternTooShort, got {other:?}"),
            }
        }
        // Nested under boolean operators too.
        let q = Query::all([Query::term("ok"), Query::substring("x", 3)]);
        assert!(matches!(
            q.atoms(),
            Err(AirphantError::PatternTooShort { .. })
        ));
    }

    #[test]
    fn evaluate_distributes_over_the_predicate() {
        let pa = PostingsList::from_doc_ids(&[1, 2, 3]);
        let pb = PostingsList::from_doc_ids(&[2, 3, 4]);
        let pc = PostingsList::from_doc_ids(&[5]);
        let lookup = |w: &str| match w {
            "a" => pa.clone(),
            "b" => pb.clone(),
            "c" => pc.clone(),
            _ => PostingsList::new(),
        };
        let q = Query::any([
            Query::all([Query::term("a"), Query::term("b")]),
            Query::term("c"),
        ]);
        assert_eq!(q.evaluate(&lookup), PostingsList::from_doc_ids(&[2, 3, 5]));
        // Phrase behaves as AND of its words.
        let q = Query::phrase(["a", "b"]);
        assert_eq!(q.evaluate(&lookup), PostingsList::from_doc_ids(&[2, 3]));
        // Empty operands.
        assert!(Query::And(vec![]).evaluate(&lookup).is_empty());
        assert!(Query::Or(vec![]).evaluate(&lookup).is_empty());
    }

    #[test]
    fn matches_doc_handles_all_variants() {
        let tokens = ["error", "disk"];
        let has = |w: &str| tokens.contains(&w);
        let text = "ERROR Disk sda1 failing";
        assert!(Query::term("error").matches_doc(&has, text));
        assert!(!Query::term("warn").matches_doc(&has, text));
        assert!(Query::phrase(["error", "disk"]).matches_doc(&has, text));
        assert!(Query::substring("disk sda", 3).matches_doc(&has, text));
        assert!(!Query::substring("disk sdb", 3).matches_doc(&has, text));
        let q = Query::all([
            Query::term("error"),
            Query::any([Query::term("nope"), Query::substring("FAIL", 3)]),
        ]);
        assert!(q.matches_doc(&has, text));
        // Empty groups match nothing, agreeing with evaluate(): otherwise
        // Or([And([]), term]) would admit every false positive.
        assert!(!Query::And(vec![]).matches_doc(&|_| false, ""));
        assert!(!Query::Phrase(vec![]).matches_doc(&|_| true, ""));
        assert!(!Query::Or(vec![]).matches_doc(&|_| true, ""));
        let q = Query::any([Query::And(vec![]), Query::term("absent")]);
        assert!(!q.matches_doc(&has, text), "empty AND must not leak FPs");
    }

    #[test]
    fn options_builder() {
        let o = QueryOptions::new().top_k(10).delta(1e-3).without_trace();
        assert_eq!(o.top_k, Some(10));
        assert_eq!(o.delta, Some(1e-3));
        assert!(!o.capture_trace);
        assert!(QueryOptions::default().capture_trace);
    }
}
