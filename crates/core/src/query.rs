//! The unified query AST — the single entry point for every kind of
//! lookup Airphant supports.
//!
//! Historically the crate exposed one method per query shape
//! (`search(word, top_k)`, `search_boolean(&BoolQuery)`,
//! `search_substring(pattern, n)` — the boolean and substring methods
//! survive only as deprecated shims over [`Query`] +
//! [`Searcher::execute`](crate::Searcher::execute)), and each issued its
//! own storage round trips. A [`Query`] value instead describes the
//! *whole* predicate
//! up front, which lets the planner ([`crate::plan`]) resolve every
//! term's and gram's superpost pointers from the in-memory MHT and fetch
//! them all in **one** concurrent batch — the paper's single-batch
//! guarantee (§III-C), extended from single keywords to arbitrary
//! boolean/phrase/substring compositions.
//!
//! Semantics follow §IV-F: the query function distributes over the
//! predicate, `Q(⋁_i ⋀_j w_ij) = ⋃_i ⋂_j Q(w_ij)`; substring predicates
//! use the trigram filter-then-verify pipeline; the final document filter
//! restores exactness either way.

use crate::error::AirphantError;
use airphant_corpus::{NgramTokenizer, Tokenizer};
use iou_sketch::PostingsList;

/// A composable search predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A single keyword (exact token match under the index's tokenizer).
    Term(String),
    /// All words must occur in the document. Evaluated as a conjunction
    /// (the index stores no positions, so a phrase is its word-set AND;
    /// the document filter still sees the full text).
    Phrase(Vec<String>),
    /// All sub-queries must match.
    And(Vec<Query>),
    /// Any sub-query may match.
    Or(Vec<Query>),
    /// The document text contains `pattern` as a case-insensitive
    /// substring. Requires the index to have been built with an
    /// [`NgramTokenizer`] of size `n`; the planner prefilters on the
    /// pattern's `n`-grams and the verify pass does the exact match.
    Substring {
        /// The literal substring to find.
        pattern: String,
        /// The gram size the index was built with.
        n: usize,
    },
}

impl Query {
    /// A single-keyword query.
    pub fn term(word: impl Into<String>) -> Self {
        Query::Term(word.into())
    }

    /// A phrase query (conjunction of its words).
    pub fn phrase<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query::Phrase(words.into_iter().map(Into::into).collect())
    }

    /// Conjunction of sub-queries.
    pub fn and(queries: impl IntoIterator<Item = Query>) -> Self {
        Query::And(queries.into_iter().collect())
    }

    /// Disjunction of sub-queries.
    pub fn or(queries: impl IntoIterator<Item = Query>) -> Self {
        Query::Or(queries.into_iter().collect())
    }

    /// A literal-substring query over an `n`-gram index. Matching is
    /// case-insensitive, so the pattern is stored case-folded (a
    /// directly constructed [`Query::Substring`] with uppercase letters
    /// behaves identically, just without the pre-folding).
    pub fn substring(pattern: impl Into<String>, n: usize) -> Self {
        Query::Substring {
            pattern: pattern.into().to_ascii_lowercase(),
            n,
        }
    }

    /// All distinct keyword terms mentioned by the query (Term and Phrase
    /// words), in first-appearance order. Substring grams are not terms;
    /// see [`Query::atoms`].
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Query::Term(w) => {
                if !out.contains(&w.as_str()) {
                    out.push(w);
                }
            }
            Query::Phrase(ws) => {
                for w in ws {
                    if !out.contains(&w.as_str()) {
                        out.push(w);
                    }
                }
            }
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_terms(out);
                }
            }
            Query::Substring { .. } => {}
        }
    }

    /// Every distinct index lookup key the query needs — terms, phrase
    /// words, and substring grams — in first-appearance order. This is the
    /// planner's fetch list: resolving each atom's superpost pointers and
    /// batching them is what keeps any query at one lookup round trip.
    ///
    /// Fails with [`AirphantError::PatternTooShort`] if a substring
    /// pattern is shorter than its gram size (it could not be prefiltered
    /// and would silently degrade to a full scan).
    pub fn atoms(&self) -> crate::Result<Vec<String>> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out)?;
        Ok(out)
    }

    fn collect_atoms(&self, out: &mut Vec<String>) -> crate::Result<()> {
        let push = |w: &str, out: &mut Vec<String>| {
            if !out.iter().any(|have| have == w) {
                out.push(w.to_owned());
            }
        };
        match self {
            Query::Term(w) => push(w, out),
            Query::Phrase(ws) => {
                for w in ws {
                    push(w, out);
                }
            }
            Query::And(qs) | Query::Or(qs) => {
                for q in qs {
                    q.collect_atoms(out)?;
                }
            }
            Query::Substring { pattern, n } => {
                for gram in substring_grams(pattern, *n)? {
                    push(&gram, out);
                }
            }
        }
        Ok(())
    }

    /// Evaluate the query over per-atom postings (the `⋃⋂Q(w)` identity).
    /// Unknown atoms resolve to the empty list. Substring patterns too
    /// short to carry grams evaluate to the empty list (use
    /// [`Query::atoms`] up front for the typed error).
    pub fn evaluate(&self, postings_of: &dyn Fn(&str) -> PostingsList) -> PostingsList {
        match self {
            Query::Term(w) => postings_of(w),
            Query::Phrase(ws) => intersect_words(ws.iter().map(String::as_str), postings_of),
            Query::And(qs) => {
                let mut lists = qs.iter().map(|q| q.evaluate(postings_of));
                let first = lists.next().unwrap_or_default();
                lists.fold(first, |acc, l| {
                    if acc.is_empty() {
                        acc
                    } else {
                        acc.intersect(&l)
                    }
                })
            }
            Query::Or(qs) => qs
                .iter()
                .map(|q| q.evaluate(postings_of))
                .fold(PostingsList::new(), |acc, l| acc.union(&l)),
            Query::Substring { pattern, n } => match substring_grams(pattern, *n) {
                Ok(grams) => intersect_words(grams.iter().map(String::as_str), postings_of),
                Err(_) => PostingsList::new(),
            },
        }
    }

    /// Whether a document satisfies the query, given its exact word set
    /// and raw text. This is the verify-phase predicate that restores
    /// perfect precision after the statistical prefilter.
    pub fn matches_doc(&self, has_word: &dyn Fn(&str) -> bool, text: &str) -> bool {
        // The case-folded text is shared across every Substring node of
        // the AST and only computed when one is actually reached.
        let mut lowered: Option<String> = None;
        self.matches_doc_inner(has_word, text, &mut lowered)
    }

    fn matches_doc_inner(
        &self,
        has_word: &dyn Fn(&str) -> bool,
        text: &str,
        lowered: &mut Option<String>,
    ) -> bool {
        match self {
            Query::Term(w) => has_word(w),
            // Empty groups match NOTHING, mirroring `evaluate` (which
            // resolves them to the empty postings list). Were an empty
            // AND vacuously true here, `Or([And([]), term])` would let
            // every sketch false positive through the verify pass.
            Query::Phrase(ws) => !ws.is_empty() && ws.iter().all(|w| has_word(w)),
            Query::And(qs) => {
                !qs.is_empty()
                    && qs
                        .iter()
                        .all(|q| q.matches_doc_inner(has_word, text, lowered))
            }
            Query::Or(qs) => qs
                .iter()
                .any(|q| q.matches_doc_inner(has_word, text, lowered)),
            Query::Substring { pattern, .. } => {
                let text_l = lowered.get_or_insert_with(|| text.to_ascii_lowercase());
                if pattern.bytes().any(|b| b.is_ascii_uppercase()) {
                    text_l.contains(&pattern.to_ascii_lowercase())
                } else {
                    text_l.contains(pattern.as_str())
                }
            }
        }
    }

    /// Term-level view of [`Query::matches_doc`] for queries without
    /// substring predicates (kept for the deprecated `BoolQuery` shim in
    /// `boolean.rs`; new code matches through [`Query::matches_doc`]).
    pub fn matches(&self, has_word: &dyn Fn(&str) -> bool) -> bool {
        self.matches_doc(has_word, "")
    }

    /// Whether any node of the query is a [`Query::Substring`].
    pub fn has_substring(&self) -> bool {
        match self {
            Query::Substring { .. } => true,
            Query::And(qs) | Query::Or(qs) => qs.iter().any(Query::has_substring),
            Query::Term(_) | Query::Phrase(_) => false,
        }
    }

    /// The single word of a bare `Term` query, if that is the whole query.
    /// (The planner uses this to keep the legacy top-k sampled fetch on
    /// the single-keyword fast path.)
    pub fn as_single_term(&self) -> Option<&str> {
        match self {
            Query::Term(w) => Some(w),
            _ => None,
        }
    }
}

fn intersect_words<'a>(
    words: impl Iterator<Item = &'a str>,
    postings_of: &dyn Fn(&str) -> PostingsList,
) -> PostingsList {
    let mut acc: Option<PostingsList> = None;
    for w in words {
        let next = match acc {
            Some(prev) if prev.is_empty() => return prev,
            Some(prev) => prev.intersect(&postings_of(w)),
            None => postings_of(w),
        };
        acc = Some(next);
    }
    acc.unwrap_or_default()
}

/// The distinct, sorted `n`-grams of a substring pattern, or
/// [`AirphantError::PatternTooShort`] when the pattern cannot be
/// prefiltered (`pattern` shorter than `n`, or `n == 0`).
pub(crate) fn substring_grams(pattern: &str, n: usize) -> crate::Result<Vec<String>> {
    if n == 0 || pattern.chars().count() < n {
        return Err(AirphantError::PatternTooShort {
            pattern: pattern.to_owned(),
            n,
        });
    }
    let mut grams = NgramTokenizer::new(n).tokens(pattern);
    grams.sort_unstable();
    grams.dedup();
    debug_assert!(!grams.is_empty(), "pattern of >= n chars yields grams");
    Ok(grams)
}

/// Per-query execution options.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOptions {
    /// Return at most this many hits. For single-term queries the planner
    /// uses the paper's sampled fetch (Equation 6) to pull far fewer
    /// candidate documents; compound queries fetch all candidates and
    /// truncate after the verify pass.
    pub top_k: Option<usize>,
    /// Override the index's top-K failure probability δ (Equation 6).
    pub delta: Option<f64>,
    /// Capture the per-phase latency trace (on by default). When off, the
    /// returned [`crate::SearchResult::trace`] is empty.
    pub capture_trace: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            top_k: None,
            delta: None,
            capture_trace: true,
        }
    }
}

impl QueryOptions {
    /// Default options (no top-k bound, trace captured).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the result set to `k` hits.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Set an optional top-k bound (`None` keeps all hits).
    pub fn with_top_k(mut self, k: Option<usize>) -> Self {
        self.top_k = k;
        self
    }

    /// Override the sampling failure probability δ.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Skip trace capture.
    pub fn without_trace(mut self) -> Self {
        self.capture_trace = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iou_sketch::PostingsList;

    #[test]
    fn constructors_build_expected_shapes() {
        let q = Query::and([
            Query::term("a"),
            Query::or([Query::term("b"), Query::phrase(["c", "d"])]),
            Query::substring("abc", 3),
        ]);
        assert_eq!(
            q.terms(),
            vec!["a", "b", "c", "d"],
            "terms skip substring grams"
        );
        assert!(q.has_substring());
        assert_eq!(
            q.atoms().unwrap(),
            vec!["a", "b", "c", "d", "abc"],
            "atoms include grams"
        );
    }

    #[test]
    fn atoms_deduplicate_across_branches() {
        let q = Query::or([
            Query::term("x"),
            Query::and([Query::term("x"), Query::term("y")]),
            Query::phrase(["y", "z"]),
        ]);
        assert_eq!(q.atoms().unwrap(), vec!["x", "y", "z"]);
    }

    #[test]
    fn substring_atoms_are_sorted_distinct_grams() {
        let q = Query::substring("abab", 3);
        assert_eq!(q.atoms().unwrap(), vec!["aba", "bab"]);
        // Case-folded like the NgramTokenizer at build time.
        let q = Query::substring("AbA", 3);
        assert_eq!(q.atoms().unwrap(), vec!["aba"]);
    }

    #[test]
    fn short_pattern_is_a_typed_error() {
        for (pattern, n) in [("ab", 3), ("", 3), ("abc", 0)] {
            match Query::substring(pattern, n).atoms() {
                Err(AirphantError::PatternTooShort { pattern: p, n: m }) => {
                    assert_eq!(p, pattern);
                    assert_eq!(m, n);
                }
                other => panic!("expected PatternTooShort, got {other:?}"),
            }
        }
        // Nested under boolean operators too.
        let q = Query::and([Query::term("ok"), Query::substring("x", 3)]);
        assert!(matches!(
            q.atoms(),
            Err(AirphantError::PatternTooShort { .. })
        ));
    }

    #[test]
    fn evaluate_distributes_over_the_predicate() {
        let pa = PostingsList::from_doc_ids(&[1, 2, 3]);
        let pb = PostingsList::from_doc_ids(&[2, 3, 4]);
        let pc = PostingsList::from_doc_ids(&[5]);
        let lookup = |w: &str| match w {
            "a" => pa.clone(),
            "b" => pb.clone(),
            "c" => pc.clone(),
            _ => PostingsList::new(),
        };
        let q = Query::or([
            Query::and([Query::term("a"), Query::term("b")]),
            Query::term("c"),
        ]);
        assert_eq!(q.evaluate(&lookup), PostingsList::from_doc_ids(&[2, 3, 5]));
        // Phrase behaves as AND of its words.
        let q = Query::phrase(["a", "b"]);
        assert_eq!(q.evaluate(&lookup), PostingsList::from_doc_ids(&[2, 3]));
        // Empty operands.
        assert!(Query::And(vec![]).evaluate(&lookup).is_empty());
        assert!(Query::Or(vec![]).evaluate(&lookup).is_empty());
    }

    #[test]
    fn matches_doc_handles_all_variants() {
        let tokens = ["error", "disk"];
        let has = |w: &str| tokens.contains(&w);
        let text = "ERROR Disk sda1 failing";
        assert!(Query::term("error").matches_doc(&has, text));
        assert!(!Query::term("warn").matches_doc(&has, text));
        assert!(Query::phrase(["error", "disk"]).matches_doc(&has, text));
        assert!(Query::substring("disk sda", 3).matches_doc(&has, text));
        assert!(!Query::substring("disk sdb", 3).matches_doc(&has, text));
        let q = Query::and([
            Query::term("error"),
            Query::or([Query::term("nope"), Query::substring("FAIL", 3)]),
        ]);
        assert!(q.matches_doc(&has, text));
        // Empty groups match nothing, agreeing with evaluate(): otherwise
        // Or([And([]), term]) would admit every false positive.
        assert!(!Query::And(vec![]).matches(&|_| false));
        assert!(!Query::Phrase(vec![]).matches(&|_| true));
        assert!(!Query::Or(vec![]).matches(&|_| true));
        let q = Query::or([Query::And(vec![]), Query::term("absent")]);
        assert!(!q.matches_doc(&has, text), "empty AND must not leak FPs");
    }

    #[test]
    fn options_builder() {
        let o = QueryOptions::new().top_k(10).delta(1e-3).without_trace();
        assert_eq!(o.top_k, Some(10));
        assert_eq!(o.delta, Some(1e-3));
        assert!(!o.capture_trace);
        assert!(QueryOptions::default().capture_trace);
    }
}
