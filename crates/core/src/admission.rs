//! Admission control for the async serving core: priority classes,
//! per-tenant token-bucket quotas, and queue-depth/deadline-aware
//! load-shedding.
//!
//! The paper's serving story assumes a cooperative workload; a
//! production front-end does not get that luxury. Under overload the
//! bounded queue of the sync [`QueryServer`](crate::serve::QueryServer)
//! degrades bluntly — every submitter sees the same untyped
//! `QueryServer` back-pressure regardless of how important its query is.
//! This module makes overload *graceful* instead:
//!
//! * **Priority classes** ([`Priority`]) partition the in-flight budget
//!   with per-class depth watermarks: Low work is shed first (at ~50% of
//!   capacity by default), Normal next (~80%), and High keeps the full
//!   budget — so background scans never starve interactive traffic.
//! * **Per-tenant token buckets** ([`QuotaConfig`]) bound any single
//!   tenant's admission rate on the *simulated* clock, so one noisy
//!   tenant cannot monopolize the in-flight budget even below the depth
//!   watermarks.
//! * **Deadline-aware rejection**: once the smoothed (EWMA) sojourn
//!   estimate says an arriving query cannot meet its deadline, admitting
//!   it only wastes backend reads — it is shed up front with a typed
//!   [`SubmitError::Overloaded`] carrying a `retry_after` hint.
//!
//! Every rejection is **typed**: callers receive
//! `SubmitError::Overloaded { class, retry_after }`, never a panic or a
//! silent drop, and the counters in [`AdmissionStats`] preserve the
//! conservation invariant `submitted == admitted + shed_total()`.
//!
//! The controller is clock-explicit — every decision takes `now` from
//! the caller (the server's virtual clock) — which keeps it trivially
//! testable and deterministic.

use crate::serve::SubmitError;
use airphant_storage::SimDuration;
use std::collections::HashMap;

/// Priority class of a submitted query. Ordering is by importance:
/// `High > Normal > Low` in terms of how long each keeps being admitted
/// as load rises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Interactive traffic: admitted until the hard in-flight cap.
    High,
    /// Default class: shed at the normal watermark (~80% of capacity).
    Normal,
    /// Background/batch traffic: shed first (~50% of capacity).
    Low,
}

impl Priority {
    /// Human-readable label (`"high"`, `"normal"`, `"low"`).
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-tenant token-bucket quota, refilled on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: how many queries a tenant may burst at once.
    pub burst: f64,
    /// Sustained refill rate in queries per simulated second.
    pub per_sec: f64,
}

impl QuotaConfig {
    /// A quota allowing `per_sec` sustained qps with a burst of `burst`.
    pub fn new(burst: f64, per_sec: f64) -> Self {
        Self { burst, per_sec }
    }
}

/// Configuration for the [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Hard cap on concurrently admitted (in-flight) queries. This is a
    /// *memory* bound, not a thread bound: the async core suspends
    /// queries on the virtual clock, so tens of thousands can be in
    /// flight over a handful of OS threads.
    pub max_in_flight: usize,
    /// Fraction of `max_in_flight` at which Low-priority work is shed.
    pub low_watermark: f64,
    /// Fraction of `max_in_flight` at which Normal-priority work is shed.
    pub normal_watermark: f64,
    /// Per-tenant token-bucket quota; `None` disables quota enforcement.
    pub quota: Option<QuotaConfig>,
    /// When set, arrivals whose EWMA-estimated sojourn exceeds this
    /// deadline are shed up front instead of timing out after burning
    /// backend reads.
    pub deadline: Option<SimDuration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 16 * 1024,
            low_watermark: 0.5,
            normal_watermark: 0.8,
            quota: None,
            deadline: None,
        }
    }
}

impl AdmissionConfig {
    /// Config with the given hard in-flight cap and default watermarks.
    pub fn with_max_in_flight(max_in_flight: usize) -> Self {
        Self {
            max_in_flight,
            ..Self::default()
        }
    }

    /// Set the per-tenant quota.
    pub fn with_quota(mut self, quota: QuotaConfig) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Set the admission deadline used for up-front infeasibility sheds.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    fn class_limit(&self, class: Priority) -> usize {
        let frac = match class {
            Priority::High => 1.0,
            Priority::Normal => self.normal_watermark,
            Priority::Low => self.low_watermark,
        };
        ((self.max_in_flight as f64 * frac).floor() as usize).max(1)
    }
}

/// Counters kept by the [`AdmissionController`]. The conservation
/// invariant `submitted == admitted + shed_total()` always holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionStats {
    /// Queries that reached admission.
    pub submitted: u64,
    /// Queries admitted into the in-flight set.
    pub admitted: u64,
    /// High-priority queries shed at the hard cap.
    pub shed_high: u64,
    /// Normal-priority queries shed at the normal watermark.
    pub shed_normal: u64,
    /// Low-priority queries shed at the low watermark.
    pub shed_low: u64,
    /// Queries shed because the tenant's token bucket was empty.
    pub shed_quota: u64,
    /// Queries shed because the sojourn estimate exceeded the deadline.
    pub shed_deadline: u64,
}

impl AdmissionStats {
    /// Total shed queries across every cause.
    pub fn shed_total(&self) -> u64 {
        self.shed_high + self.shed_normal + self.shed_low + self.shed_quota + self.shed_deadline
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill: SimDuration,
}

/// Depth-, quota-, and deadline-aware admission over the virtual clock.
///
/// Not internally synchronized: the async server drives it under its own
/// scheduler lock, and unit tests drive it directly.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    in_flight: usize,
    buckets: HashMap<String, Bucket>,
    /// Virtual time of the last idle-bucket sweep.
    last_sweep: SimDuration,
    /// Smoothed end-to-end sojourn (seconds) of completed queries.
    ewma_sojourn: Option<f64>,
    stats: AdmissionStats,
}

/// EWMA smoothing factor for the sojourn estimate.
const EWMA_ALPHA: f64 = 0.1;

/// Fallback sojourn estimate before any completion has been observed:
/// roughly two cloud round trips.
const DEFAULT_SOJOURN_SECS: f64 = 0.1;

impl AdmissionController {
    /// A controller with zero in-flight queries.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            in_flight: 0,
            buckets: HashMap::new(),
            last_sweep: SimDuration::ZERO,
            ewma_sojourn: None,
            stats: AdmissionStats::default(),
        }
    }

    /// Number of tenants with a live token bucket. Bounded under
    /// unique-tenant churn: buckets idle for a full refill are swept.
    pub fn tracked_tenants(&self) -> usize {
        self.buckets.len()
    }

    /// Currently admitted (in-flight) queries.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Smoothed sojourn estimate in simulated seconds (observed or the
    /// cold-start default).
    pub fn sojourn_estimate_secs(&self) -> f64 {
        self.ewma_sojourn.unwrap_or(DEFAULT_SOJOURN_SECS)
    }

    /// Decide admission for one arrival at virtual time `now`. On
    /// success the query counts as in-flight until
    /// [`AdmissionController::on_complete`]. Every rejection is a typed
    /// [`SubmitError::Overloaded`] with a `retry_after` hint.
    pub fn try_admit(
        &mut self,
        class: Priority,
        tenant: Option<&str>,
        now: SimDuration,
    ) -> Result<(), SubmitError> {
        self.stats.submitted += 1;

        // 1. Depth watermark for the class. Shedding happens *before*
        //    any token is consumed so a shed burst does not also drain
        //    the tenant's quota.
        let limit = self.config.class_limit(class);
        if self.in_flight >= limit {
            match class {
                Priority::High => self.stats.shed_high += 1,
                Priority::Normal => self.stats.shed_normal += 1,
                Priority::Low => self.stats.shed_low += 1,
            }
            return Err(SubmitError::Overloaded {
                class,
                retry_after: self.drain_hint(limit),
            });
        }

        // 2. Deadline feasibility: the crude but effective Little's-law
        //    style estimate — the smoothed sojourn scaled by how full the
        //    in-flight set is. If even that optimistic figure blows the
        //    deadline, admitting only wastes backend reads. Cold start
        //    (no observed completion yet) admits optimistically. Runs
        //    *before* the token bucket so a deadline shed never drains the
        //    tenant's quota — every shed path rejects with the bucket
        //    untouched.
        if let (Some(deadline), Some(sojourn)) = (self.config.deadline, self.ewma_sojourn) {
            let load = 1.0 + self.in_flight as f64 / self.config.max_in_flight.max(1) as f64;
            let estimate = sojourn * load;
            if estimate > deadline.as_secs_f64() {
                self.stats.shed_deadline += 1;
                return Err(SubmitError::Overloaded {
                    class,
                    retry_after: SimDuration::from_secs_f64(estimate - deadline.as_secs_f64()),
                });
            }
        }

        // 3. Per-tenant token bucket on the virtual clock. This is the
        //    last check: a token is consumed only by an admission.
        if let (Some(quota), Some(tenant)) = (self.config.quota, tenant) {
            self.sweep_idle_buckets(quota, now);
            let bucket = self.buckets.entry(tenant.to_owned()).or_insert(Bucket {
                tokens: quota.burst,
                last_refill: now,
            });
            let elapsed = now.saturating_sub(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * quota.per_sec).min(quota.burst);
            bucket.last_refill = now;
            if bucket.tokens < 1.0 {
                self.stats.shed_quota += 1;
                let deficit = 1.0 - bucket.tokens;
                let secs = if quota.per_sec > 0.0 {
                    deficit / quota.per_sec
                } else {
                    DEFAULT_SOJOURN_SECS
                };
                return Err(SubmitError::Overloaded {
                    class,
                    retry_after: SimDuration::from_secs_f64(secs),
                });
            }
            bucket.tokens -= 1.0;
        }

        self.stats.admitted += 1;
        self.in_flight += 1;
        Ok(())
    }

    /// Record a finished query (completed, failed, or timed out):
    /// releases its in-flight slot and folds its sojourn into the EWMA
    /// estimate.
    pub fn on_complete(&mut self, sojourn: SimDuration) {
        self.in_flight = self.in_flight.saturating_sub(1);
        let secs = sojourn.as_secs_f64();
        self.ewma_sojourn = Some(match self.ewma_sojourn {
            Some(prev) => prev + EWMA_ALPHA * (secs - prev),
            None => secs,
        });
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats.clone()
    }

    /// Evict token buckets idle for at least one full refill. An idle
    /// bucket refills to `burst`, which is exactly the state a fresh
    /// bucket starts in — so dropping it cannot change any future
    /// admission decision, it only bounds the map under unique-tenant
    /// churn. Runs at most once per refill horizon, keeping the scan
    /// amortized O(1) per arrival. With `per_sec == 0` buckets never
    /// refill, so eviction would hand churning tenants a fresh burst;
    /// such configs keep their buckets forever.
    fn sweep_idle_buckets(&mut self, quota: QuotaConfig, now: SimDuration) {
        if quota.per_sec <= 0.0 {
            return;
        }
        let horizon = SimDuration::from_secs_f64(quota.burst / quota.per_sec);
        if now.saturating_sub(self.last_sweep) < horizon {
            return;
        }
        self.last_sweep = now;
        self.buckets
            .retain(|_, b| now.saturating_sub(b.last_refill) < horizon);
    }

    /// Estimated time until the in-flight set drains below `limit`:
    /// completions arrive at roughly `in_flight / sojourn` per second, so
    /// the excess drains in `excess * sojourn / in_flight`.
    fn drain_hint(&self, limit: usize) -> SimDuration {
        let excess = (self.in_flight + 1).saturating_sub(limit).max(1) as f64;
        let depth = self.in_flight.max(1) as f64;
        let secs = (self.sojourn_estimate_secs() * excess / depth).max(0.001);
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn watermarks_shed_low_before_normal_before_high() {
        let mut ctl = AdmissionController::new(AdmissionConfig::with_max_in_flight(10));
        // Fill to the low watermark (5 of 10).
        for _ in 0..5 {
            ctl.try_admit(Priority::High, None, ms(0)).unwrap();
        }
        let low = ctl.try_admit(Priority::Low, None, ms(1)).unwrap_err();
        assert!(matches!(
            low,
            SubmitError::Overloaded {
                class: Priority::Low,
                ..
            }
        ));
        // Normal still fits until 8 of 10.
        for _ in 0..3 {
            ctl.try_admit(Priority::Normal, None, ms(2)).unwrap();
        }
        let normal = ctl.try_admit(Priority::Normal, None, ms(3)).unwrap_err();
        assert!(matches!(
            normal,
            SubmitError::Overloaded {
                class: Priority::Normal,
                ..
            }
        ));
        // High fills the hard cap, then sheds too.
        for _ in 0..2 {
            ctl.try_admit(Priority::High, None, ms(4)).unwrap();
        }
        let high = ctl.try_admit(Priority::High, None, ms(5)).unwrap_err();
        assert!(matches!(
            high,
            SubmitError::Overloaded {
                class: Priority::High,
                retry_after,
            } if retry_after > SimDuration::ZERO
        ));
        let stats = ctl.stats();
        assert_eq!(stats.submitted, stats.admitted + stats.shed_total());
        assert_eq!(stats.shed_low, 1);
        assert_eq!(stats.shed_normal, 1);
        assert_eq!(stats.shed_high, 1);
    }

    #[test]
    fn completions_release_slots() {
        let mut ctl = AdmissionController::new(AdmissionConfig::with_max_in_flight(2));
        ctl.try_admit(Priority::High, None, ms(0)).unwrap();
        ctl.try_admit(Priority::High, None, ms(0)).unwrap();
        assert!(ctl.try_admit(Priority::High, None, ms(1)).is_err());
        ctl.on_complete(ms(40));
        assert_eq!(ctl.in_flight(), 1);
        ctl.try_admit(Priority::High, None, ms(2)).unwrap();
        assert!((ctl.sojourn_estimate_secs() - 0.040).abs() < 1e-9);
    }

    #[test]
    fn token_bucket_refills_on_virtual_clock() {
        let quota = QuotaConfig::new(2.0, 10.0); // burst 2, 10 qps
        let cfg = AdmissionConfig::with_max_in_flight(100).with_quota(quota);
        let mut ctl = AdmissionController::new(cfg);
        // Burst of 2 admitted, third shed on quota.
        ctl.try_admit(Priority::Normal, Some("t0"), ms(0)).unwrap();
        ctl.try_admit(Priority::Normal, Some("t0"), ms(0)).unwrap();
        let err = ctl
            .try_admit(Priority::Normal, Some("t0"), ms(0))
            .unwrap_err();
        match err {
            SubmitError::Overloaded { retry_after, .. } => {
                // 1 token at 10 qps = 100ms away.
                assert!((retry_after.as_secs_f64() - 0.1).abs() < 1e-6);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Another tenant is unaffected.
        ctl.try_admit(Priority::Normal, Some("t1"), ms(0)).unwrap();
        // 100 virtual ms later the bucket holds one token again.
        ctl.try_admit(Priority::Normal, Some("t0"), ms(100))
            .unwrap();
        assert_eq!(ctl.stats().shed_quota, 1);
    }

    #[test]
    fn deadline_infeasible_arrivals_are_shed() {
        let cfg = AdmissionConfig::with_max_in_flight(100).with_deadline(ms(10));
        let mut ctl = AdmissionController::new(cfg);
        // Teach the EWMA that sojourns run ~200ms.
        ctl.try_admit(Priority::High, None, ms(0)).unwrap();
        ctl.on_complete(ms(200));
        let err = ctl.try_admit(Priority::High, None, ms(1)).unwrap_err();
        assert!(matches!(err, SubmitError::Overloaded { .. }));
        assert_eq!(ctl.stats().shed_deadline, 1);
    }

    #[test]
    fn deadline_sheds_do_not_consume_tenant_tokens() {
        // Regression: the deadline-feasibility check used to run *after*
        // the token bucket, so a deadline shed had already consumed a
        // token — double-penalizing the tenant. With `per_sec: 0` there
        // is no refill, making any leak permanent and observable.
        let cfg = AdmissionConfig::with_max_in_flight(100)
            .with_quota(QuotaConfig::new(2.0, 0.0))
            .with_deadline(ms(10));
        let mut ctl = AdmissionController::new(cfg);
        ctl.try_admit(Priority::High, Some("t"), ms(0)).unwrap();
        assert_eq!(ctl.buckets.get("t").unwrap().tokens, 1.0);
        // Teach the EWMA that sojourns run ~200ms >> the 10ms deadline.
        ctl.on_complete(ms(200));
        let err = ctl.try_admit(Priority::High, Some("t"), ms(1)).unwrap_err();
        assert!(matches!(err, SubmitError::Overloaded { .. }));
        let stats = ctl.stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.shed_quota, 0);
        // The shed left the bucket exactly as it was.
        assert_eq!(ctl.buckets.get("t").unwrap().tokens, 1.0);
        assert_eq!(stats.submitted, stats.admitted + stats.shed_total());
    }

    #[test]
    fn idle_tenant_buckets_are_swept() {
        // burst 5 at 10 qps → a full refill (the sweep horizon) is 500ms.
        let quota = QuotaConfig::new(5.0, 10.0);
        let cfg = AdmissionConfig::with_max_in_flight(100_000).with_quota(quota);
        let mut ctl = AdmissionController::new(cfg);
        // 10k unique tenants arriving 1ms apart: without eviction the map
        // would hold all 10k buckets forever.
        for i in 0..10_000u64 {
            let tenant = format!("tenant-{i}");
            ctl.try_admit(Priority::High, Some(&tenant), ms(i)).unwrap();
        }
        // At most one horizon of tenants survives a sweep, plus up to one
        // more horizon of arrivals before the next sweep fires.
        assert!(
            ctl.tracked_tenants() <= 1_001,
            "unique-tenant churn must not grow the map past the sweep \
             horizon, got {} buckets",
            ctl.tracked_tenants()
        );
    }

    #[test]
    fn eviction_preserves_refill_semantics() {
        // burst 2 at 10 qps → horizon 200ms.
        let quota = QuotaConfig::new(2.0, 10.0);
        let cfg = AdmissionConfig::with_max_in_flight(100).with_quota(quota);
        let mut ctl = AdmissionController::new(cfg);
        ctl.try_admit(Priority::Normal, Some("t"), ms(0)).unwrap();
        ctl.try_admit(Priority::Normal, Some("t"), ms(0)).unwrap();
        assert!(ctl.try_admit(Priority::Normal, Some("t"), ms(0)).is_err());
        // 300ms later the bucket has been idle past a full refill: the
        // sweep drops it, and the recreated bucket starts at `burst` —
        // byte-identical to what refill would have produced.
        ctl.try_admit(Priority::Normal, Some("t"), ms(300)).unwrap();
        ctl.try_admit(Priority::Normal, Some("t"), ms(300)).unwrap();
        assert!(ctl.try_admit(Priority::Normal, Some("t"), ms(300)).is_err());
        // A recently active tenant is never swept mid-conversation.
        ctl.try_admit(Priority::Normal, Some("u"), ms(301)).unwrap();
        ctl.try_admit(Priority::Normal, Some("u"), ms(350)).unwrap();
        assert!(ctl.buckets.contains_key("u"));
    }

    #[test]
    fn conservation_invariant_under_random_mix() {
        let mut ctl = AdmissionController::new(AdmissionConfig::with_max_in_flight(4));
        let classes = [Priority::High, Priority::Normal, Priority::Low];
        let mut ok = 0u64;
        for i in 0..100u64 {
            let class = classes[(i % 3) as usize];
            if ctl.try_admit(class, Some("t"), ms(i)).is_ok() {
                ok += 1;
                if i % 2 == 0 {
                    ctl.on_complete(ms(30));
                }
            }
        }
        let stats = ctl.stats();
        assert_eq!(stats.admitted, ok);
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.submitted, stats.admitted + stats.shed_total());
    }
}
