//! Two-stage query planning and execution.
//!
//! **Stage 1 — plan.** Walk the [`Query`] AST and collect every distinct
//! lookup atom (terms, phrase words, substring grams) via
//! [`Query::atoms`]. For each segment's in-memory MHT, resolve every
//! atom to its superpost pointers and coalesce *all* resulting ranged
//! reads — across atoms, layers, and segments — into a single request
//! vector, deduplicating identical ranges.
//!
//! **Stage 2 — execute.** Issue the whole vector as **one**
//! [`ObjectStore::get_ranges`] batch (one storage round trip, §III-C),
//! decode each atom's superposts, intersect per atom, evaluate the
//! boolean algebra over the per-atom postings, then fetch the surviving
//! candidate documents in one more batch and run the exact verify pass.
//!
//! The old per-term execution paid one lookup round trip per term/gram
//! (and per segment); the planner pays exactly one regardless of query
//! shape — `trace.round_trips_of(PhaseKind::Postings) == 1` is asserted
//! in the test suite.

use crate::query::{Query, QueryOptions};
use crate::result::{SearchHit, SearchResult};
use crate::retrieval::BlobResolver;
use crate::searcher::{sample_postings, seed_for, Searcher};
use crate::Result;
use airphant_corpus::Tokenizer;
use airphant_storage::{BatchFetch, ObjectStore, PhaseKind, QueryTrace, RangeRequest, SimDuration};
use iou_sketch::mht::WordLookup;
use iou_sketch::{intersect_views, sample_size_for_top_k, Posting, PostingsList, SuperpostView};
use std::collections::HashMap;

/// Per-atom postings for each segment, resolved in one storage batch.
pub(crate) type SegmentAtomPostings = Vec<HashMap<String, PostingsList>>;

/// Stage-1 output of the postings phase: the deduplicated batch of ranged
/// reads, plus — per segment and atom — the request indices whose decoded
/// superposts intersect to that atom's postings.
///
/// Splitting the plan from its completion lets a driver *suspend* between
/// dispatching `requests` and decoding the returned batch; the async
/// serving core ([`crate::serve::AsyncQueryServer`]) parks the query on
/// the simulated clock during that window while the sync path simply
/// calls straight through. Both paths share this code, so their results
/// are byte-for-byte identical by construction.
pub(crate) struct PostingsPlan {
    /// Deduplicated ranged reads covering every atom in every segment.
    pub(crate) requests: Vec<RangeRequest>,
    /// Per segment, per atom: `(atom_idx, request indices)`.
    fetch_plan: Vec<Vec<(usize, Vec<usize>)>>,
}

/// Plan the postings phase: coalesce every superpost pointer — across
/// atoms, layers, and segments — into one deduplicated request vector.
pub(crate) fn plan_postings(segments: &[&Searcher], atoms: &[String]) -> PostingsPlan {
    let mut requests: Vec<RangeRequest> = Vec::new();
    let mut request_index: HashMap<(String, u64, u64), usize> = HashMap::new();
    let mut push_request = |req: RangeRequest, requests: &mut Vec<RangeRequest>| -> usize {
        let key = (req.name.clone(), req.offset, req.len);
        *request_index.entry(key).or_insert_with(|| {
            requests.push(req);
            requests.len() - 1
        })
    };

    // Per segment, per atom: the request indices whose decoded superposts
    // intersect to the atom's postings.
    let mut fetch_plan: Vec<Vec<(usize, Vec<usize>)>> = Vec::with_capacity(segments.len());
    for searcher in segments {
        let mut seg_plan = Vec::with_capacity(atoms.len());
        for (atom_idx, atom) in atoms.iter().enumerate() {
            let indices: Vec<usize> = match searcher.mht().lookup(atom) {
                WordLookup::Common(ptr) => vec![push_request(
                    RangeRequest::superpost(
                        searcher.resolve_block(ptr.block),
                        ptr.offset,
                        ptr.len as u64,
                    ),
                    &mut requests,
                )],
                WordLookup::Sketched(ptrs) => ptrs
                    .iter()
                    .map(|p| {
                        push_request(
                            RangeRequest::superpost(
                                searcher.resolve_block(p.block),
                                p.offset,
                                p.len as u64,
                            ),
                            &mut requests,
                        )
                    })
                    .collect(),
            };
            seg_plan.push((atom_idx, indices));
        }
        fetch_plan.push(seg_plan);
    }

    PostingsPlan {
        requests,
        fetch_plan,
    }
}

/// Complete the postings phase from a fetched batch: decode each distinct
/// range at most once, intersect per atom, and charge the decode work as
/// compute on `trace`. The caller records the batch itself (the sync path
/// via [`QueryTrace::record_batch`], the async driver with its
/// possibly-hedged wait). When the plan had no requests, `batch` may be
/// empty and every segment resolves to an empty map.
pub(crate) fn complete_postings(
    plan: &PostingsPlan,
    atoms: &[String],
    batch: &BatchFetch,
    trace: &mut QueryTrace,
) -> Result<SegmentAtomPostings> {
    if plan.requests.is_empty() {
        return Ok(plan.fetch_plan.iter().map(|_| HashMap::new()).collect());
    }

    let compute_start = std::time::Instant::now();
    // Validate each distinct range at most once into a zero-copy
    // [`SuperpostView`] over the fetched bytes — no eager `PostingsList`
    // materialization. Views are shared between atoms (hash collisions)
    // and repeats across the query; atoms then intersect lazily over the
    // views, so the only per-atom allocation is the intersection output.
    let mut decoded: Vec<Option<SuperpostView>> = vec![None; plan.requests.len()];
    for seg_plan in &plan.fetch_plan {
        for (_, indices) in seg_plan {
            for &i in indices {
                if decoded[i].is_none() {
                    decoded[i] = Some(SuperpostView::parse(batch.parts[i].bytes.clone())?);
                }
            }
        }
    }

    let mut out: SegmentAtomPostings = Vec::with_capacity(plan.fetch_plan.len());
    for seg_plan in &plan.fetch_plan {
        let mut map = HashMap::with_capacity(atoms.len());
        for (atom_idx, indices) in seg_plan {
            let refs: Vec<&SuperpostView> = indices
                .iter()
                .map(|&i| decoded[i].as_ref().expect("pre-validated"))
                .collect();
            let postings = intersect_views(&refs);
            map.insert(atoms[*atom_idx].clone(), postings);
        }
        out.push(map);
    }
    trace.record_compute(SimDuration::from_secs_f64(
        compute_start.elapsed().as_secs_f64(),
    ));
    Ok(out)
}

/// Resolve `atoms` against every segment's MHT and fetch all superposts
/// in a single concurrent batch, recording one [`PhaseKind::Postings`]
/// phase on `trace`. Returns, per segment, each atom's intersected
/// postings list.
pub(crate) fn lookup_atoms(
    segments: &[&Searcher],
    atoms: &[String],
    trace: &mut QueryTrace,
) -> Result<SegmentAtomPostings> {
    let plan = plan_postings(segments, atoms);
    if plan.requests.is_empty() {
        return Ok(segments.iter().map(|_| HashMap::new()).collect());
    }

    // --- Execute: one batch of concurrent ranged reads for everything.
    let batch = segments[0].store_dyn().get_ranges(&plan.requests)?;
    trace.record_batch(PhaseKind::Postings, &batch);
    complete_postings(&plan, atoms, &batch, trace)
}

/// Evaluate `query` over one segment's atom postings.
fn evaluate_segment(query: &Query, atom_postings: &HashMap<String, PostingsList>) -> PostingsList {
    query.evaluate(&|w| atom_postings.get(w).cloned().unwrap_or_default())
}

/// Index-lookup phase only: plan, fetch one superpost batch, evaluate
/// the boolean algebra. Returns the union of every segment's candidate
/// postings and the lookup trace (exactly one round trip).
pub(crate) fn lookup_over(
    segments: &[&Searcher],
    query: &Query,
) -> Result<(PostingsList, QueryTrace)> {
    let query = crate::expand::expand_for_segments(query, segments)?;
    let query = query.as_ref();
    let atoms = query.atoms()?;
    let mut trace = QueryTrace::new();
    let maps = lookup_atoms(segments, &atoms, &mut trace)?;
    let mut out = PostingsList::new();
    for map in &maps {
        out.union_with(&evaluate_segment(query, map));
    }
    Ok((out, trace))
}

/// Stage-2 output of the document phase: the candidate documents to
/// fetch (one coalesced batch across segments) plus which segment each
/// request belongs to, so completion can use the right tokenizer.
pub(crate) struct DocPlan {
    /// One document range per surviving candidate, in segment order.
    pub(crate) requests: Vec<RangeRequest>,
    /// Owning segment index per request.
    doc_segments: Vec<usize>,
    /// Total candidates across segments before sampling/filtering.
    candidates_total: usize,
}

/// Plan the document phase from resolved atom postings: evaluate the
/// boolean algebra per segment, apply the sampled fetch on the
/// single-keyword + top-k fast path (Equation 6), and resolve every
/// surviving posting to a document range.
pub(crate) fn plan_documents(
    segments: &[&Searcher],
    query: &Query,
    opts: &QueryOptions,
    maps: &SegmentAtomPostings,
) -> DocPlan {
    let mut candidates_total = 0usize;
    let mut doc_requests: Vec<RangeRequest> = Vec::new();
    let mut doc_segments: Vec<usize> = Vec::new();
    for (seg_idx, (searcher, map)) in segments.iter().zip(maps).enumerate() {
        let candidates = evaluate_segment(query, map);
        candidates_total += candidates.len();
        let to_fetch: Vec<Posting> = match (query.as_single_term(), opts.top_k) {
            (Some(word), Some(k)) => {
                let is_common = matches!(searcher.mht().lookup(word), WordLookup::Common(_));
                let f0 = if is_common {
                    0.0
                } else {
                    searcher.expected_fp()
                };
                let delta = opts.delta.unwrap_or_else(|| searcher.topk_delta());
                let rk = sample_size_for_top_k(k, candidates.len(), f0, delta);
                sample_postings(&candidates, rk, seed_for(word))
            }
            _ => candidates.iter().copied().collect(),
        };
        let resolver = searcher.mht().string_table();
        for p in &to_fetch {
            let name = resolver.resolve(p.blob).unwrap_or_default().to_owned();
            doc_requests.push(RangeRequest::new(name, p.offset, p.len as u64));
            doc_segments.push(seg_idx);
        }
    }
    DocPlan {
        requests: doc_requests,
        doc_segments,
        candidates_total,
    }
}

/// Complete the document phase: run the exact verify pass over the
/// fetched candidate documents (perfect precision, §III-C) and assemble
/// the final [`SearchResult`]. `batch` must be `Some` exactly when the
/// plan had requests; the caller records the batch on `trace` before
/// calling (sync and async drivers charge different waits).
///
/// This intentionally does not reuse `retrieval::fetch_and_filter`: that
/// helper issues its own `get_ranges` per call with a single blob
/// resolver, while this pass must keep documents from *all* segments
/// (each with its own string table and tokenizer) in one coalesced
/// batch.
pub(crate) fn complete_documents(
    segments: &[&Searcher],
    query: &Query,
    opts: &QueryOptions,
    plan: &DocPlan,
    batch: Option<&BatchFetch>,
    mut trace: QueryTrace,
) -> SearchResult {
    let mut hits = Vec::new();
    let mut dropped = 0usize;
    if let Some(batch) = batch {
        let filter_start = std::time::Instant::now();
        for ((req, part), &seg_idx) in plan
            .requests
            .iter()
            .zip(batch.parts.iter())
            .zip(&plan.doc_segments)
        {
            let text = String::from_utf8_lossy(&part.bytes).into_owned();
            let tokenizer = segments[seg_idx].tokenizer();
            let tokens = tokenizer.tokens(&text);
            if query.matches_tokens(&tokens, &text) {
                hits.push(SearchHit {
                    blob: req.name.clone(),
                    offset: req.offset,
                    len: req.len as u32,
                    text,
                });
            } else {
                dropped += 1;
            }
        }
        trace.record_compute(SimDuration::from_secs_f64(
            filter_start.elapsed().as_secs_f64(),
        ));
    }

    if let Some(k) = opts.top_k {
        hits.truncate(k);
    }
    SearchResult {
        hits,
        trace: if opts.capture_trace {
            trace
        } else {
            QueryTrace::new()
        },
        candidates: plan.candidates_total,
        false_positives_removed: dropped,
    }
}

/// Full planned execution over one or more segments: one superpost batch,
/// boolean evaluation, one document batch, exact verify. This is the
/// synchronous driver over the staged halves
/// ([`plan_postings`]/[`complete_postings`],
/// [`plan_documents`]/[`complete_documents`]); the async serving core
/// drives the *same* stages with suspension points between dispatch and
/// completion.
pub(crate) fn execute_over(
    segments: &[&Searcher],
    query: &Query,
    opts: &QueryOptions,
) -> Result<SearchResult> {
    // Resolve vocabulary atoms (Prefix/Fuzzy/short Substring) to term
    // unions first; the expanded query drives BOTH the postings algebra
    // and the verify pass below, which is what makes expansion exact.
    let query = crate::expand::expand_for_segments(query, segments)?;
    let query = query.as_ref();
    let atoms = query.atoms()?;
    let mut trace = QueryTrace::new();
    let maps = lookup_atoms(segments, &atoms, &mut trace)?;

    let doc_plan = plan_documents(segments, query, opts, &maps);
    let batch = if doc_plan.requests.is_empty() {
        None
    } else {
        let batch = segments[0].store_dyn().get_ranges(&doc_plan.requests)?;
        trace.record_batch(PhaseKind::Documents, &batch);
        Some(batch)
    };
    Ok(complete_documents(
        segments,
        query,
        opts,
        &doc_plan,
        batch.as_ref(),
        trace,
    ))
}

/// Generic executor for engines without a coalescing planner (the
/// baselines): resolve each atom through the engine's own `lookup` —
/// paying whatever round-trip structure that index imposes — then
/// evaluate the algebra and run one fetch-and-filter verify pass.
///
/// `exact_postings` marks engines whose postings carry no false
/// positives (B-tree, skip list); for a bare top-k term query they may
/// fetch just the first `k` candidates.
pub fn execute_with_lookup(
    lookup: &dyn Fn(&str) -> Result<(PostingsList, QueryTrace)>,
    store: &dyn ObjectStore,
    resolver: &dyn BlobResolver,
    tokenizer: &dyn Tokenizer,
    exact_postings: bool,
    query: &Query,
    opts: &QueryOptions,
) -> Result<SearchResult> {
    let atoms = query.atoms()?;
    let mut trace = QueryTrace::new();
    let mut atom_postings: HashMap<String, PostingsList> = HashMap::with_capacity(atoms.len());
    let mut atom_traces: Vec<QueryTrace> = Vec::with_capacity(atoms.len());
    for atom in &atoms {
        let (list, t) = lookup(atom)?;
        atom_traces.push(t);
        atom_postings.insert(atom.clone(), list);
    }
    // Per-atom lookups carry no data dependency on each other, so a real
    // client issues them concurrently: their waits overlap (max) while
    // each atom's internal chain of dependent reads keeps its depth —
    // the same convention `QueryTrace::merge_parallel` applies to
    // segment fan-out. The baseline still pays its per-atom hierarchy;
    // it just isn't additionally serialized across atoms.
    trace.extend(&QueryTrace::merge_parallel(&atom_traces));
    let candidates = evaluate_segment(query, &atom_postings);

    let mut to_fetch: Vec<Posting> = candidates.iter().copied().collect();
    if exact_postings && query.as_single_term().is_some() {
        if let Some(k) = opts.top_k {
            to_fetch.truncate(k);
        }
    }
    let predicate = |text: &str| {
        let tokens = tokenizer.tokens(text);
        query.matches_tokens(&tokens, text)
    };
    let (mut hits, dropped) =
        crate::retrieval::fetch_and_filter(store, resolver, &to_fetch, &predicate, &mut trace)?;
    if let Some(k) = opts.top_k {
        hits.truncate(k);
    }
    Ok(SearchResult {
        hits,
        trace: if opts.capture_trace {
            trace
        } else {
            QueryTrace::new()
        },
        candidates: candidates.len(),
        false_positives_removed: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use airphant_corpus::{Corpus, LineSplitter, NgramTokenizer, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use bytes::Bytes;
    use std::sync::Arc;

    fn build(lines: &[&str]) -> (Arc<InMemoryStore>, Searcher) {
        let inner = Arc::new(InMemoryStore::new());
        let store: Arc<dyn ObjectStore> = inner.clone();
        store.put("c/b", Bytes::from(lines.join("\n"))).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(128)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
        let searcher = Searcher::open(store, "idx").unwrap();
        (inner, searcher)
    }

    fn texts(r: &SearchResult) -> Vec<&str> {
        let mut v: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
        v.sort();
        v
    }

    #[test]
    fn compound_query_is_one_lookup_round_trip() {
        let (_, searcher) = build(&[
            "error disk sda",
            "error network eth0",
            "warn disk sdb",
            "info all good",
        ]);
        let query = Query::all([Query::term("error"), Query::term("disk")]);
        let r = searcher.execute(&query, &QueryOptions::new()).unwrap();
        assert_eq!(texts(&r), vec!["error disk sda"]);
        assert_eq!(
            r.trace.round_trips_of(PhaseKind::Postings),
            1,
            "all terms' superposts in one batch"
        );
        assert_eq!(r.trace.round_trips(), 2, "lookup batch + document batch");
    }

    #[test]
    fn planner_batch_matches_store_accounting() {
        let inner = InMemoryStore::new();
        let store = Arc::new(SimulatedCloudStore::new(
            inner,
            LatencyModel::gcs_like(),
            11,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            s.put(
                "c/b",
                Bytes::from_static(b"alpha beta gamma\nbeta gamma delta\ngamma delta"),
            )
            .unwrap();
            let corpus = Corpus::new(
                s.clone(),
                vec!["c/b".into()],
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            );
            Builder::new(
                AirphantConfig::default()
                    .with_total_bins(64)
                    .with_manual_layers(3)
                    .with_common_fraction(0.0),
            )
            .build(&corpus, "idx")
            .unwrap();
        }
        let searcher = Searcher::open(store.clone(), "idx").unwrap();
        store.reset_stats();
        let query = Query::all([
            Query::term("alpha"),
            Query::term("beta"),
            Query::any([Query::term("gamma"), Query::term("delta")]),
        ]);
        let (postings, trace) = searcher.execute_lookup(&query).unwrap();
        let stats = store.stats();
        assert_eq!(stats.batches, 1, "planner issues exactly one batch");
        assert_eq!(trace.round_trips(), 1);
        assert!(!postings.is_empty());
        // Four distinct sketched atoms x 3 layers, minus any shared bins.
        assert!(stats.read_requests <= 12);
        assert!(stats.read_requests >= 3);
    }

    #[test]
    fn shared_bins_are_fetched_once() {
        // One term queried under two names that collide into the same bins
        // would be pathological to arrange; instead assert the dedup path
        // directly: the same term twice in the AST plans no extra reads.
        let (_, searcher) = build(&["x y", "y z"]);
        let single = searcher.execute_lookup(&Query::term("y")).unwrap().1;
        let double = searcher
            .execute_lookup(&Query::any([Query::term("y"), Query::term("y")]))
            .unwrap()
            .1;
        assert_eq!(single.requests(), double.requests());
    }

    #[test]
    fn substring_inside_boolean_query() {
        let (_, _) = build(&["unused"]);
        // N-gram index for substring + term mixing.
        let inner = Arc::new(InMemoryStore::new());
        let store: Arc<dyn ObjectStore> = inner.clone();
        store
            .put(
                "c/b",
                Bytes::from_static(b"blk_12345 received\nblk_99 deleted\npacket drop"),
            )
            .unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(NgramTokenizer::new(3)),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(256)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "ng")
        .unwrap();
        let searcher =
            Searcher::open_with_tokenizer(store, "ng", Arc::new(NgramTokenizer::new(3))).unwrap();
        let q = Query::all([Query::substring("blk_", 3), Query::substring("received", 3)]);
        let r = searcher.execute(&q, &QueryOptions::new()).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("blk_12345"));
        assert_eq!(r.trace.round_trips_of(PhaseKind::Postings), 1);
    }

    #[test]
    fn pattern_too_short_is_typed_without_gram_fallback() {
        // A whitespace index has no gram layer to fall back to, so the
        // legacy typed error stands even though the segment has a
        // vocabulary.
        let (_, searcher) = build(&["hello world"]);
        let err = searcher
            .execute(&Query::substring("he", 3), &QueryOptions::new())
            .unwrap_err();
        assert!(matches!(
            err,
            crate::AirphantError::PatternTooShort { ref pattern, n: 3 } if pattern == "he"
        ));
    }

    #[test]
    fn short_pattern_falls_back_to_vocabulary_on_gram_index() {
        let inner = Arc::new(InMemoryStore::new());
        let store: Arc<dyn ObjectStore> = inner.clone();
        store
            .put(
                "c/b",
                Bytes::from_static(b"blk_12345 received\nblk_99 deleted\npacket drop"),
            )
            .unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(NgramTokenizer::new(3)),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(256)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "ng")
        .unwrap();
        let searcher =
            Searcher::open_with_tokenizer(store, "ng", Arc::new(NgramTokenizer::new(3))).unwrap();
        // "99" is shorter than the gram size; the vocabulary scan resolves
        // it through the grams that contain it.
        let r = searcher
            .execute(&Query::substring("99", 3), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("blk_99"));
        assert_eq!(r.trace.round_trips_of(PhaseKind::Postings), 1);
        // No match anywhere still answers cleanly (empty, not an error).
        let none = searcher
            .execute(&Query::substring("zq", 3), &QueryOptions::new())
            .unwrap();
        assert!(none.hits.is_empty());
    }

    #[test]
    fn options_trace_capture_toggle() {
        let (_, searcher) = build(&["a b", "b c"]);
        let on = searcher
            .execute(&Query::term("b"), &QueryOptions::new())
            .unwrap();
        assert!(on.trace.requests() > 0);
        let off = searcher
            .execute(&Query::term("b"), &QueryOptions::new().without_trace())
            .unwrap();
        assert_eq!(off.trace.requests(), 0);
        assert_eq!(texts(&on), texts(&off));
    }

    #[test]
    fn empty_query_shapes_return_empty() {
        let (_, searcher) = build(&["a b"]);
        for q in [Query::And(vec![]), Query::Or(vec![]), Query::Phrase(vec![])] {
            let r = searcher.execute(&q, &QueryOptions::new()).unwrap();
            assert!(r.hits.is_empty(), "{q:?} must match nothing");
            assert_eq!(r.trace.round_trips(), 0, "no atoms, no storage traffic");
        }
    }

    // --- Boolean-algebra behavior, migrated from the pre-0.3 shim
    // modules (`search_boolean`/`search_substring` are gone; the engine
    // surface is `execute` only).

    fn boolean_searcher() -> Searcher {
        build(&[
            "error disk",
            "error network",
            "warn disk",
            "info startup",
            "error disk network",
        ])
        .1
    }

    #[test]
    fn and_intersects_or_unions_dnf_composes() {
        let s = boolean_searcher();
        let r = s
            .execute(
                &Query::all([Query::term("error"), Query::term("disk")]),
                &QueryOptions::new(),
            )
            .unwrap();
        assert_eq!(texts(&r), vec!["error disk", "error disk network"]);
        let r = s
            .execute(
                &Query::any([Query::term("warn"), Query::term("info")]),
                &QueryOptions::new(),
            )
            .unwrap();
        assert_eq!(texts(&r), vec!["info startup", "warn disk"]);
        // (error AND network) OR (warn AND disk)
        let q = Query::term("error")
            .and(Query::term("network"))
            .or(Query::term("warn").and(Query::term("disk")));
        let r = s.execute(&q, &QueryOptions::new()).unwrap();
        assert_eq!(
            texts(&r),
            vec!["error disk network", "error network", "warn disk"]
        );
    }

    #[test]
    fn unknown_terms_resolve_empty() {
        let s = boolean_searcher();
        let q = Query::all([Query::term("error"), Query::term("zzz-missing")]);
        assert!(s.execute(&q, &QueryOptions::new()).unwrap().hits.is_empty());
        // OR with a missing term degrades gracefully.
        let q = Query::any([Query::term("info"), Query::term("zzz-missing")]);
        let r = s.execute(&q, &QueryOptions::new()).unwrap();
        assert_eq!(texts(&r), vec!["info startup"]);
    }

    #[test]
    fn empty_and_under_or_keeps_perfect_precision() {
        // Regression: Or([And([]), term]) must behave exactly like the
        // bare term — no false positives admitted by the empty group.
        let s = boolean_searcher();
        let bare = s.search("error", None).unwrap();
        let wrapped = s
            .execute(
                &Query::any([Query::And(vec![]), Query::term("error")]),
                &QueryOptions::new(),
            )
            .unwrap();
        assert_eq!(texts(&bare), texts(&wrapped));
    }

    fn ngram_searcher(lines: &[&str]) -> Searcher {
        let inner = Arc::new(InMemoryStore::new());
        let store: Arc<dyn ObjectStore> = inner.clone();
        store.put("c/ng", Bytes::from(lines.join("\n"))).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/ng".into()],
            Arc::new(LineSplitter),
            Arc::new(NgramTokenizer::new(3)),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(512)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "ngx")
        .unwrap();
        Searcher::open_with_tokenizer(store, "ngx", Arc::new(NgramTokenizer::new(3))).unwrap()
    }

    #[test]
    fn substring_spans_word_boundaries_case_insensitively() {
        let s = ngram_searcher(&[
            "PacketResponder terminating",
            "block blk_12345 received",
            "NameSystem.addStoredBlock updated",
        ]);
        let r = s
            .execute(&Query::substring("blk_123", 3), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("blk_12345"));
        // Substring spanning a space, with case folding.
        let r = s
            .execute(&Query::substring("Responder TERM", 3), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        // Absent pattern answers empty, not an error.
        let r = s
            .execute(&Query::substring("zzzzzz", 3), &QueryOptions::new())
            .unwrap();
        assert!(r.hits.is_empty());
    }

    #[test]
    fn substring_verify_drops_gram_sharing_decoys() {
        // Document "xabay babx" contains both grams of "abab" ({aba, bab})
        // without containing "abab": the verify pass must drop it.
        let s = ngram_searcher(&["xabay babx", "the abab string"]);
        let r = s
            .execute(&Query::substring("abab", 3), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        assert!(r.hits[0].text.contains("abab"));
        assert!(
            r.false_positives_removed >= 1,
            "the gram-sharing decoy must have been filtered"
        );
    }

    #[test]
    fn prefix_and_fuzzy_execute_in_one_postings_batch() {
        let (_, s) = build(&[
            "typeahead rocks",
            "typed queries",
            "typo happens",
            "unrelated line",
        ]);
        let r = s
            .execute(&Query::prefix("typ"), &QueryOptions::new())
            .unwrap();
        assert_eq!(
            texts(&r),
            vec!["typeahead rocks", "typed queries", "typo happens"]
        );
        assert_eq!(
            r.trace.round_trips_of(PhaseKind::Postings),
            1,
            "expansion still pays exactly one postings batch"
        );
        let r = s
            .execute(&Query::fuzzy("tipo", 1), &QueryOptions::new())
            .unwrap();
        assert_eq!(texts(&r), vec!["typo happens"]);
        assert_eq!(r.trace.round_trips_of(PhaseKind::Postings), 1);
    }

    #[test]
    fn prefix_without_vocabulary_is_unsupported() {
        // A v1-format build carries no vocabulary section.
        let inner = Arc::new(InMemoryStore::new());
        let store: Arc<dyn ObjectStore> = inner.clone();
        store.put("c/b", Bytes::from_static(b"alpha beta")).unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(64)
                .with_format(iou_sketch::FormatVersion::V1),
        )
        .build(&corpus, "v1idx")
        .unwrap();
        let s = Searcher::open(store, "v1idx").unwrap();
        let err = s
            .execute(&Query::prefix("al"), &QueryOptions::new())
            .unwrap_err();
        assert!(
            matches!(err, crate::AirphantError::UnsupportedQuery { .. }),
            "got {err:?}"
        );
        // Exact terms still answer on the same v1 segment.
        let r = s
            .execute(&Query::term("alpha"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 1);
    }
}
