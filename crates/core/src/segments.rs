//! Segmented indexes: append-only corpus updates.
//!
//! The paper targets "read-oriented workloads where the corpus doesn't
//! change frequently" and defers frequent-update support to future work
//! (§III-A). This module implements the natural first step — the
//! LSM/Lucene-segment strategy: each batch of new documents becomes its own
//! immutable IoU Sketch *segment*; a query fans out to all segments
//! concurrently (their lookups are independent single batches, so the
//! fan-out preserves Airphant's no-dependent-round-trips property) and
//! unions the results. A small manifest blob lists the live segments.

use crate::builder::{BuildReport, Builder};
use crate::config::AirphantConfig;
use crate::error::AirphantError;
use crate::result::SearchResult;
use crate::searcher::Searcher;
use crate::Result;
use airphant_corpus::{Corpus, Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, QueryTrace};
use bytes::Bytes;
use std::sync::Arc;

fn manifest_blob(base: &str) -> String {
    format!("{base}/manifest")
}

/// Manages the segment manifest and appends new segments.
pub struct SegmentManager {
    store: Arc<dyn ObjectStore>,
    base: String,
}

impl SegmentManager {
    /// Open (or start) a segmented index rooted at `base`.
    pub fn new(store: Arc<dyn ObjectStore>, base: impl Into<String>) -> Self {
        SegmentManager {
            store,
            base: base.into(),
        }
    }

    /// The live segment prefixes, in append order.
    pub fn segments(&self) -> Result<Vec<String>> {
        let name = manifest_blob(&self.base);
        if !self.store.exists(&name) {
            return Ok(Vec::new());
        }
        let fetched = self.store.get(&name)?;
        let text = String::from_utf8_lossy(&fetched.bytes);
        Ok(text
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_owned)
            .collect())
    }

    /// Index `corpus` as a new immutable segment and publish it in the
    /// manifest. Returns the segment's build report and prefix.
    pub fn append(
        &self,
        corpus: &Corpus,
        config: &AirphantConfig,
    ) -> Result<(BuildReport, String)> {
        let mut segments = self.segments()?;
        let prefix = format!("{}/seg-{:05}", self.base, segments.len());
        let report = Builder::new(config.clone()).build(corpus, &prefix)?;
        segments.push(prefix.clone());
        self.store
            .put(&manifest_blob(&self.base), Bytes::from(segments.join("\n")))?;
        Ok((report, prefix))
    }

    /// Open a searcher over every live segment (whitespace tokenizer).
    pub fn open(&self) -> Result<SegmentedSearcher> {
        self.open_with_tokenizer(Arc::new(WhitespaceTokenizer))
    }

    /// Open with a custom document-word parser (must match the tokenizer
    /// the segments were indexed with, e.g. an
    /// [`airphant_corpus::NgramTokenizer`] for substring queries).
    pub fn open_with_tokenizer(&self, tokenizer: Arc<dyn Tokenizer>) -> Result<SegmentedSearcher> {
        let segments = self.segments()?;
        if segments.is_empty() {
            return Err(AirphantError::IndexNotFound {
                prefix: self.base.clone(),
            });
        }
        let searchers = segments
            .iter()
            .map(|p| Searcher::open_with_tokenizer(self.store.clone(), p, tokenizer.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(SegmentedSearcher { searchers })
    }
}

/// A query server over multiple immutable segments.
pub struct SegmentedSearcher {
    searchers: Vec<Searcher>,
}

impl SegmentedSearcher {
    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.searchers.len()
    }

    /// Per-segment searchers (for introspection).
    pub fn segments(&self) -> &[Searcher] {
        &self.searchers
    }

    /// Execute a [`Query`](crate::Query) across every segment through the
    /// single-batch planner: all segments' superpost pointers for all the
    /// query's terms/grams are coalesced into **one**
    /// `ObjectStore::get_ranges` batch (one round trip, not one per
    /// segment), then each segment's candidates are evaluated, fetched in
    /// one document batch, and filtered exactly. Hits keep append order
    /// (older segments first).
    pub fn execute(
        &self,
        query: &crate::Query,
        opts: &crate::QueryOptions,
    ) -> Result<SearchResult> {
        let refs: Vec<&Searcher> = self.searchers.iter().collect();
        crate::plan::execute_over(&refs, query, opts)
    }

    /// Index-lookup phase only: the whole query's candidate postings,
    /// unioned across segments, in exactly one storage round trip.
    pub fn execute_lookup(
        &self,
        query: &crate::Query,
    ) -> Result<(iou_sketch::PostingsList, QueryTrace)> {
        let refs: Vec<&Searcher> = self.searchers.iter().collect();
        crate::plan::lookup_over(&refs, query)
    }

    /// Single-keyword search across all segments; thin shim over
    /// [`SegmentedSearcher::execute`].
    pub fn search(&self, word: &str, top_k: Option<usize>) -> Result<SearchResult> {
        self.execute(
            &crate::Query::term(word),
            &crate::QueryOptions::new().with_top_k(top_k),
        )
    }
}

// Segment fan-out shares the same thread-safety contract as a single
// Searcher: a `SegmentedSearcher` behind one `Arc` serves N query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SegmentManager>();
    assert_send_sync::<SegmentedSearcher>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};

    fn corpus_of(store: Arc<dyn ObjectStore>, blob: &str, lines: &[&str]) -> Corpus {
        store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec![blob.to_owned()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    fn config() -> AirphantConfig {
        AirphantConfig::default()
            .with_total_bins(64)
            .with_common_fraction(0.0)
    }

    #[test]
    fn append_and_search_across_segments() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        assert!(mgr.segments().unwrap().is_empty());

        let day1 = corpus_of(store.clone(), "c/day1", &["error disk", "info boot"]);
        mgr.append(&day1, &config()).unwrap();
        let day2 = corpus_of(store.clone(), "c/day2", &["error network", "warn temp"]);
        mgr.append(&day2, &config()).unwrap();

        assert_eq!(mgr.segments().unwrap().len(), 2);
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.segment_count(), 2);

        // "error" spans both segments.
        let r = searcher.search("error", None).unwrap();
        let texts: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
        assert_eq!(texts, vec!["error disk", "error network"]);
        // Words local to one segment still resolve.
        assert_eq!(searcher.search("boot", None).unwrap().hits.len(), 1);
        assert_eq!(searcher.search("temp", None).unwrap().hits.len(), 1);
        assert!(searcher.search("absent", None).unwrap().hits.is_empty());
    }

    #[test]
    fn new_documents_visible_after_reopen() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        let day1 = corpus_of(store.clone(), "c/day1", &["alpha"]);
        mgr.append(&day1, &config()).unwrap();
        let s1 = mgr.open().unwrap();
        assert_eq!(s1.search("beta", None).unwrap().hits.len(), 0);

        let day2 = corpus_of(store.clone(), "c/day2", &["beta"]);
        mgr.append(&day2, &config()).unwrap();
        // Old handle still serves its snapshot; a reopen sees the update.
        assert_eq!(s1.segment_count(), 1);
        let s2 = mgr.open().unwrap();
        assert_eq!(s2.search("beta", None).unwrap().hits.len(), 1);
    }

    #[test]
    fn open_empty_manifest_errors() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store, "idx");
        assert!(matches!(
            mgr.open(),
            Err(AirphantError::IndexNotFound { .. })
        ));
    }

    #[test]
    fn segment_fanout_waits_overlap() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            21,
        ));
        let dyn_store: Arc<dyn ObjectStore> = store.clone();
        let mgr = SegmentManager::new(dyn_store.clone(), "idx");
        for day in 0..4 {
            let lines: Vec<String> = (0..20).map(|i| format!("shared word{day}x{i}")).collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let c = corpus_of(dyn_store.clone(), &format!("c/day{day}"), &refs);
            mgr.append(&c, &config()).unwrap();
        }
        let searcher = mgr.open().unwrap();
        let r = searcher.search("shared", None).unwrap();
        assert_eq!(r.hits.len(), 80, "union across 4 segments");
        // Four concurrent segment lookups at ~50ms each must overlap: the
        // merged wait stays well under 4 sequential round-trip stacks.
        let single_rt = 46.0;
        assert!(
            r.trace.wait().as_millis_f64() < 3.0 * 2.0 * single_rt,
            "fan-out wait {} should overlap",
            r.trace.wait()
        );
    }

    #[test]
    fn compound_query_over_three_segments_is_one_batch() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            17,
        ));
        let dyn_store: Arc<dyn ObjectStore> = store.clone();
        let mgr = SegmentManager::new(dyn_store.clone(), "idx");
        for day in 0..3 {
            let lines: Vec<String> = (0..10)
                .map(|i| format!("error disk{day} unit{i}"))
                .collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let c = corpus_of(dyn_store.clone(), &format!("c/day{day}"), &refs);
            mgr.append(&c, &config()).unwrap();
        }
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.segment_count(), 3);

        store.reset_stats();
        let query = crate::Query::and([crate::Query::term("error"), crate::Query::term("disk1")]);
        let (postings, trace) = searcher.execute_lookup(&query).unwrap();
        let stats = store.stats();
        assert_eq!(
            stats.batches, 1,
            "3 segments x 2 terms coalesce into one batch"
        );
        assert_eq!(trace.round_trips(), 1);
        // Segment 1's 10 docs all survive; other segments may contribute
        // false-positive candidates (removed later by the verify pass).
        assert!(postings.len() >= 10, "candidates union across segments");

        // Full execution: one lookup batch + one document batch.
        store.reset_stats();
        let r = searcher
            .execute(&query, &crate::QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 10);
        assert!(r.hits.iter().all(|h| h.text.contains("disk1")));
        assert_eq!(store.stats().batches, 2, "lookup batch + document batch");
        assert_eq!(r.trace.round_trips(), 2);
    }

    #[test]
    fn top_k_truncates_across_segments() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        for day in 0..3 {
            let lines: Vec<String> = (0..30).map(|i| format!("common tail{day}-{i}")).collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let c = corpus_of(store.clone(), &format!("c/day{day}"), &refs);
            mgr.append(&c, &config()).unwrap();
        }
        let searcher = mgr.open().unwrap();
        let r = searcher.search("common", Some(7)).unwrap();
        assert_eq!(r.hits.len(), 7);
    }
}
