//! Segmented indexes: append-only corpus updates with an atomic manifest.
//!
//! The paper targets "read-oriented workloads where the corpus doesn't
//! change frequently" and defers frequent-update support to future work
//! (§III-A). This module implements the LSM/Lucene-segment strategy: each
//! batch of new documents becomes its own immutable IoU Sketch *segment*;
//! a query fans out to all segments concurrently (their lookups are
//! independent single batches, so the fan-out preserves Airphant's
//! no-dependent-round-trips property) and unions the results.
//!
//! The set of live segments is a **versioned manifest** blob: a
//! generation-numbered record listing unique segment ids, published with
//! [`ObjectStore::put_if_version`] (compare-and-swap) in a re-read-and-
//! retry loop. Concurrent appenders therefore never lose each other's
//! segments — the second writer's CAS fails, it re-reads the manifest
//! that now includes the first writer's segment, and republishes with
//! both. Segment ids are process-unique random tokens, never derived
//! from the live-segment *count* (which two racing appenders would
//! compute identically, colliding on the same blob prefix).
//!
//! Segment-count growth is bounded by the [`Compactor`](crate::Compactor)
//! (see `compact.rs`), which merges small segments into one rebuilt
//! sketch and garbage-collects the superseded blobs after the new
//! manifest generation is durable.

use crate::builder::{BuildReport, Builder};
use crate::config::AirphantConfig;
use crate::error::AirphantError;
use crate::result::SearchResult;
use crate::searcher::Searcher;
use crate::Result;
use airphant_corpus::{Corpus, CorpusProfile, Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, QueryTrace, StorageError, Version};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// First line of every manifest: format magic + version.
const MANIFEST_MAGIC: &str = "airphant-segments v1";

/// Give up CAS-publishing after this many lost rounds (each loss proves
/// another writer made progress, so hitting the cap means the store is
/// misbehaving, not that contention is high).
const MAX_PUBLISH_ATTEMPTS: usize = 1024;

pub(crate) fn manifest_blob(base: &str) -> String {
    format!("{base}/manifest")
}

/// One live segment: its unique id and the corpus blobs it indexed (the
/// blob list is what lets the [`Compactor`](crate::Compactor) rebuild a
/// merged sketch from source documents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Unique segment id, e.g. `seg-a1b2c3…`; the segment's blobs live
    /// under `{base}/{id}/`.
    pub id: String,
    /// The corpus blobs this segment indexed, in append order.
    pub corpus_blobs: Vec<String>,
}

impl SegmentEntry {
    /// The segment's index prefix under `base`.
    pub fn prefix(&self, base: &str) -> String {
        format!("{base}/{}", self.id)
    }
}

/// A decoded segment manifest: a generation number plus the live
/// segments, oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Strictly increasing publish counter; every successful CAS bumps
    /// it, which also guarantees no two manifest payloads are ever
    /// byte-identical (so content-derived version tokens cannot ABA).
    pub generation: u64,
    /// Live segments in append order.
    pub segments: Vec<SegmentEntry>,
}

impl Manifest {
    /// Serialize to the versioned text format.
    ///
    /// ```text
    /// airphant-segments v1
    /// generation 3
    /// segment<TAB>seg-00a1…<TAB>c/day1<TAB>c/day2
    /// ```
    pub fn encode(&self) -> Bytes {
        let mut out = String::new();
        out.push_str(MANIFEST_MAGIC);
        out.push('\n');
        out.push_str(&format!("generation {}\n", self.generation));
        for seg in &self.segments {
            out.push_str("segment\t");
            out.push_str(&seg.id);
            for blob in &seg.corpus_blobs {
                out.push('\t');
                out.push_str(blob);
            }
            out.push('\n');
        }
        Bytes::from(out)
    }

    /// Parse a manifest blob, rejecting anything malformed with a typed
    /// [`AirphantError::CorruptManifest`] (never a lossy decode that
    /// would mangle corruption into bogus segment prefixes).
    pub fn decode(base: &str, bytes: &[u8]) -> Result<Manifest> {
        let corrupt = |reason: String| AirphantError::CorruptManifest {
            base: base.to_owned(),
            reason,
        };
        let text = std::str::from_utf8(bytes)
            .map_err(|e| corrupt(format!("manifest is not valid UTF-8: {e}")))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_MAGIC) => {}
            Some(other) if other.starts_with("airphant-segments ") => {
                return Err(corrupt(format!(
                    "unsupported manifest version {:?} (expected {MANIFEST_MAGIC:?})",
                    other
                )));
            }
            other => {
                return Err(corrupt(format!(
                    "unrecognized manifest header {other:?} (expected {MANIFEST_MAGIC:?})"
                )));
            }
        }
        let generation = match lines.next().and_then(|l| l.strip_prefix("generation ")) {
            Some(n) => n
                .parse::<u64>()
                .map_err(|_| corrupt(format!("unknown generation format {n:?}")))?,
            None => return Err(corrupt("missing generation record".to_owned())),
        };
        let mut segments = Vec::new();
        for line in lines.filter(|l| !l.is_empty()) {
            let mut fields = line.split('\t');
            if fields.next() != Some("segment") {
                return Err(corrupt(format!("unrecognized manifest record {line:?}")));
            }
            let id = match fields.next() {
                Some(id) if !id.is_empty() && !id.contains('/') => id.to_owned(),
                other => return Err(corrupt(format!("malformed segment id {other:?}"))),
            };
            if segments.iter().any(|s: &SegmentEntry| s.id == id) {
                return Err(corrupt(format!("duplicate segment id {id:?}")));
            }
            segments.push(SegmentEntry {
                id,
                corpus_blobs: fields.map(str::to_owned).collect(),
            });
        }
        Ok(Manifest {
            generation,
            segments,
        })
    }
}

/// A process-unique segment id: time + pid + a monotone counter, mixed
/// through FNV. Never derived from the manifest length — that is exactly
/// the collision two racing appenders would both compute.
pub(crate) fn unique_segment_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in [
        nanos,
        std::process::id() as u64,
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ] {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("seg-{hash:016x}")
}

/// Manages the segment manifest: appends new segments and opens searchers
/// over the live set.
pub struct SegmentManager {
    store: Arc<dyn ObjectStore>,
    base: String,
}

impl SegmentManager {
    /// Open (or start) a segmented index rooted at `base`.
    pub fn new(store: Arc<dyn ObjectStore>, base: impl Into<String>) -> Self {
        SegmentManager {
            store,
            base: base.into(),
        }
    }

    /// The object store the segments live in.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// The base prefix of this segmented index.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The current manifest (empty generation 0 when none exists yet).
    pub fn manifest(&self) -> Result<Manifest> {
        Ok(self.manifest_with_version()?.0)
    }

    /// Whether a manifest blob has been published under this base —
    /// distinguishes "segmented index with zero live segments" from "no
    /// segmented index here at all" (the sharded layout relies on this:
    /// every shard's manifest exists from creation, so a missing one is
    /// a hole, not an empty shard).
    pub fn manifest_exists(&self) -> bool {
        self.store.exists(&manifest_blob(&self.base))
    }

    /// Publish an empty generation-1 manifest if none exists yet.
    /// Sharded layouts call this for every shard up front, so a shard
    /// that happens to receive no documents still has a manifest. A
    /// racing append simply wins the CAS — this publish then aborts.
    pub fn ensure_manifest(&self) -> Result<()> {
        if self.manifest_exists() {
            return Ok(());
        }
        self.publish_with(|manifest| manifest.generation == 0 && manifest.segments.is_empty())?;
        Ok(())
    }

    /// The manifest plus the version token a CAS publish must present.
    pub(crate) fn manifest_with_version(&self) -> Result<(Manifest, Version)> {
        let name = manifest_blob(&self.base);
        match self.store.get(&name) {
            Ok(fetched) => {
                let manifest = Manifest::decode(&self.base, &fetched.bytes)?;
                Ok((manifest, Version::of_bytes(&fetched.bytes)))
            }
            Err(StorageError::BlobNotFound { .. }) => Ok((Manifest::default(), Version::Absent)),
            Err(e) => Err(e.into()),
        }
    }

    /// CAS-with-retry publish: apply `update` to a freshly read manifest
    /// and publish the result; on a lost race, re-read and re-apply.
    /// `update` returns `false` to abort (nothing left to publish), which
    /// surfaces as `Ok(None)`.
    pub(crate) fn publish_with(
        &self,
        mut update: impl FnMut(&mut Manifest) -> bool,
    ) -> Result<Option<Manifest>> {
        let name = manifest_blob(&self.base);
        let mut last_err = None;
        for _ in 0..MAX_PUBLISH_ATTEMPTS {
            let (mut manifest, version) = self.manifest_with_version()?;
            if !update(&mut manifest) {
                return Ok(None);
            }
            manifest.generation += 1;
            match self.store.put_if_version(&name, manifest.encode(), version) {
                Ok(_) => return Ok(Some(manifest)),
                Err(e @ StorageError::VersionMismatch { .. }) => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(last_err.expect("loop exits early unless a CAS lost").into())
    }

    /// The live segment prefixes, in append order.
    pub fn segments(&self) -> Result<Vec<String>> {
        let manifest = self.manifest()?;
        Ok(manifest
            .segments
            .iter()
            .map(|s| s.prefix(&self.base))
            .collect())
    }

    /// The current manifest generation (0 before the first append).
    pub fn generation(&self) -> Result<u64> {
        Ok(self.manifest()?.generation)
    }

    /// Index `corpus` as a new immutable segment and publish it in the
    /// manifest. Returns the segment's build report and prefix.
    ///
    /// Safe under concurrency: the segment is built under a unique
    /// prefix, then linked into the manifest with CAS-and-retry, so
    /// racing appenders each keep their own blobs and the final manifest
    /// lists every segment. If the build fails (or the process dies)
    /// before the publish, the manifest is untouched and the
    /// half-written blobs are orphans for the compactor's GC sweep.
    pub fn append(
        &self,
        corpus: &Corpus,
        config: &AirphantConfig,
    ) -> Result<(BuildReport, String)> {
        self.append_inner(corpus, config, None)
    }

    /// Append with a pre-computed profile (a sharded build profiles
    /// every shard's slice in one corpus pass, then hands each shard
    /// its profile here instead of paying a per-shard re-profile).
    pub(crate) fn append_with_profile(
        &self,
        corpus: &Corpus,
        config: &AirphantConfig,
        profile: CorpusProfile,
    ) -> Result<(BuildReport, String)> {
        self.append_inner(corpus, config, Some(profile))
    }

    fn append_inner(
        &self,
        corpus: &Corpus,
        config: &AirphantConfig,
        profile: Option<CorpusProfile>,
    ) -> Result<(BuildReport, String)> {
        let entry = SegmentEntry {
            id: unique_segment_id(),
            corpus_blobs: corpus.blobs().to_vec(),
        };
        let prefix = entry.prefix(&self.base);
        let builder = Builder::new(config.clone());
        let report = match profile {
            Some(profile) => builder.build_with_profile(corpus, &prefix, profile)?,
            None => builder.build(corpus, &prefix)?,
        };
        self.publish_with(|manifest| {
            manifest.segments.push(entry.clone());
            true
        })?;
        Ok((report, prefix))
    }

    /// Open a searcher over every live segment (whitespace tokenizer).
    pub fn open(&self) -> Result<SegmentedSearcher> {
        self.open_with_tokenizer(Arc::new(WhitespaceTokenizer))
    }

    /// Open with a custom document-word parser (must match the tokenizer
    /// the segments were indexed with, e.g. an
    /// [`airphant_corpus::NgramTokenizer`] for substring queries).
    pub fn open_with_tokenizer(&self, tokenizer: Arc<dyn Tokenizer>) -> Result<SegmentedSearcher> {
        self.open_inner(tokenizer, false)
    }

    /// Open a snapshot; `allow_empty` admits a manifest with zero live
    /// segments (a sharded layout's shard that received no documents)
    /// instead of reporting `IndexNotFound`.
    pub(crate) fn open_inner(
        &self,
        tokenizer: Arc<dyn Tokenizer>,
        allow_empty: bool,
    ) -> Result<SegmentedSearcher> {
        let manifest = self.manifest()?;
        if manifest.segments.is_empty() && !allow_empty {
            return Err(AirphantError::IndexNotFound {
                prefix: self.base.clone(),
            });
        }
        let searchers = manifest
            .segments
            .iter()
            .map(|s| {
                Searcher::open_with_tokenizer(
                    self.store.clone(),
                    &s.prefix(&self.base),
                    tokenizer.clone(),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SegmentedSearcher {
            searchers,
            generation: manifest.generation,
        })
    }
}

/// A query server over multiple immutable segments — a consistent
/// snapshot of one manifest generation.
pub struct SegmentedSearcher {
    searchers: Vec<Searcher>,
    generation: u64,
}

impl SegmentedSearcher {
    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.searchers.len()
    }

    /// The manifest generation this snapshot was opened at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-segment searchers (for introspection).
    pub fn segments(&self) -> &[Searcher] {
        &self.searchers
    }

    /// Execute a [`Query`](crate::Query) across every segment through the
    /// single-batch planner: all segments' superpost pointers for all the
    /// query's terms/grams are coalesced into **one**
    /// `ObjectStore::get_ranges` batch (one round trip, not one per
    /// segment), then each segment's candidates are evaluated, fetched in
    /// one document batch, and filtered exactly. Hits keep append order
    /// (older segments first).
    pub fn execute(
        &self,
        query: &crate::Query,
        opts: &crate::QueryOptions,
    ) -> Result<SearchResult> {
        let refs: Vec<&Searcher> = self.searchers.iter().collect();
        crate::plan::execute_over(&refs, query, opts)
    }

    /// Index-lookup phase only: the whole query's candidate postings,
    /// unioned across segments, in exactly one storage round trip.
    pub fn execute_lookup(
        &self,
        query: &crate::Query,
    ) -> Result<(iou_sketch::PostingsList, QueryTrace)> {
        let refs: Vec<&Searcher> = self.searchers.iter().collect();
        crate::plan::lookup_over(&refs, query)
    }

    /// Single-keyword search across all segments; thin shim over
    /// [`SegmentedSearcher::execute`].
    pub fn search(&self, word: &str, top_k: Option<usize>) -> Result<SearchResult> {
        self.execute(
            &crate::Query::term(word),
            &crate::QueryOptions::new().with_top_k(top_k),
        )
    }
}

// Segment fan-out shares the same thread-safety contract as a single
// Searcher: a `SegmentedSearcher` behind one `Arc` serves N query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SegmentManager>();
    assert_send_sync::<SegmentedSearcher>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};

    fn corpus_of(store: Arc<dyn ObjectStore>, blob: &str, lines: &[&str]) -> Corpus {
        store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec![blob.to_owned()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    fn config() -> AirphantConfig {
        AirphantConfig::default()
            .with_total_bins(64)
            .with_common_fraction(0.0)
    }

    #[test]
    fn append_and_search_across_segments() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        assert!(mgr.segments().unwrap().is_empty());
        assert_eq!(mgr.generation().unwrap(), 0);

        let day1 = corpus_of(store.clone(), "c/day1", &["error disk", "info boot"]);
        mgr.append(&day1, &config()).unwrap();
        let day2 = corpus_of(store.clone(), "c/day2", &["error network", "warn temp"]);
        mgr.append(&day2, &config()).unwrap();

        assert_eq!(mgr.segments().unwrap().len(), 2);
        assert_eq!(mgr.generation().unwrap(), 2);
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.segment_count(), 2);
        assert_eq!(searcher.generation(), 2);

        // "error" spans both segments.
        let r = searcher.search("error", None).unwrap();
        let texts: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
        assert_eq!(texts, vec!["error disk", "error network"]);
        // Words local to one segment still resolve.
        assert_eq!(searcher.search("boot", None).unwrap().hits.len(), 1);
        assert_eq!(searcher.search("temp", None).unwrap().hits.len(), 1);
        assert!(searcher.search("absent", None).unwrap().hits.is_empty());
    }

    #[test]
    fn new_documents_visible_after_reopen() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        let day1 = corpus_of(store.clone(), "c/day1", &["alpha"]);
        mgr.append(&day1, &config()).unwrap();
        let s1 = mgr.open().unwrap();
        assert_eq!(s1.search("beta", None).unwrap().hits.len(), 0);

        let day2 = corpus_of(store.clone(), "c/day2", &["beta"]);
        mgr.append(&day2, &config()).unwrap();
        // Old handle still serves its snapshot; a reopen sees the update.
        assert_eq!(s1.segment_count(), 1);
        let s2 = mgr.open().unwrap();
        assert_eq!(s2.search("beta", None).unwrap().hits.len(), 1);
        assert!(s2.generation() > s1.generation());
    }

    #[test]
    fn open_empty_manifest_errors() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store, "idx");
        assert!(matches!(
            mgr.open(),
            Err(AirphantError::IndexNotFound { .. })
        ));
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            generation: 7,
            segments: vec![
                SegmentEntry {
                    id: "seg-00ff".into(),
                    corpus_blobs: vec!["c/day1".into(), "c/day2".into()],
                },
                SegmentEntry {
                    id: "seg-1234".into(),
                    corpus_blobs: vec![],
                },
            ],
        };
        let decoded = Manifest::decode("idx", &m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.segments[0].prefix("idx"), "idx/seg-00ff");
    }

    #[test]
    fn corrupt_manifests_are_typed_errors() {
        let cases: Vec<(&[u8], &str)> = vec![
            (b"\xff\xfe garbage".as_slice(), "not valid UTF-8"),
            (b"not-a-manifest\nsegment\tx".as_slice(), "unrecognized"),
            (b"airphant-segments v99\ngeneration 1".as_slice(), "version"),
            (b"airphant-segments v1\n".as_slice(), "generation"),
            (
                b"airphant-segments v1\ngeneration twelve".as_slice(),
                "unknown generation format",
            ),
            (
                b"airphant-segments v1\ngeneration 1\nbogus-record".as_slice(),
                "record",
            ),
            (
                b"airphant-segments v1\ngeneration 1\nsegment\ta/b".as_slice(),
                "segment id",
            ),
            (
                b"airphant-segments v1\ngeneration 1\nsegment\tdup\nsegment\tdup".as_slice(),
                "duplicate",
            ),
        ];
        for (bytes, needle) in cases {
            match Manifest::decode("idx", bytes) {
                Err(AirphantError::CorruptManifest { base, reason }) => {
                    assert_eq!(base, "idx");
                    assert!(
                        reason.contains(needle),
                        "reason {reason:?} should mention {needle:?}"
                    );
                }
                other => panic!("expected CorruptManifest, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_manifest_surfaces_from_manager() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put("idx/manifest", Bytes::from_static(b"\xffnot utf8\xff"))
            .unwrap();
        let mgr = SegmentManager::new(store, "idx");
        assert!(matches!(
            mgr.segments(),
            Err(AirphantError::CorruptManifest { .. })
        ));
        assert!(matches!(
            mgr.open(),
            Err(AirphantError::CorruptManifest { .. })
        ));
        // The old pre-versioned format (a bare list of prefixes) is also
        // rejected as corrupt rather than lossily misread.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put("idx/manifest", Bytes::from_static(b"idx/seg-00000"))
            .unwrap();
        let mgr = SegmentManager::new(store, "idx");
        assert!(matches!(
            mgr.segments(),
            Err(AirphantError::CorruptManifest { .. })
        ));
    }

    #[test]
    fn unique_ids_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(unique_segment_id()));
        }
    }

    #[test]
    fn segment_fanout_waits_overlap() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            21,
        ));
        let dyn_store: Arc<dyn ObjectStore> = store.clone();
        let mgr = SegmentManager::new(dyn_store.clone(), "idx");
        for day in 0..4 {
            let lines: Vec<String> = (0..20).map(|i| format!("shared word{day}x{i}")).collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let c = corpus_of(dyn_store.clone(), &format!("c/day{day}"), &refs);
            mgr.append(&c, &config()).unwrap();
        }
        let searcher = mgr.open().unwrap();
        let r = searcher.search("shared", None).unwrap();
        assert_eq!(r.hits.len(), 80, "union across 4 segments");
        // Four concurrent segment lookups at ~50ms each must overlap: the
        // merged wait stays well under 4 sequential round-trip stacks.
        let single_rt = 46.0;
        assert!(
            r.trace.wait().as_millis_f64() < 3.0 * 2.0 * single_rt,
            "fan-out wait {} should overlap",
            r.trace.wait()
        );
    }

    #[test]
    fn compound_query_over_three_segments_is_one_batch() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            17,
        ));
        let dyn_store: Arc<dyn ObjectStore> = store.clone();
        let mgr = SegmentManager::new(dyn_store.clone(), "idx");
        for day in 0..3 {
            let lines: Vec<String> = (0..10)
                .map(|i| format!("error disk{day} unit{i}"))
                .collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let c = corpus_of(dyn_store.clone(), &format!("c/day{day}"), &refs);
            mgr.append(&c, &config()).unwrap();
        }
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.segment_count(), 3);

        store.reset_stats();
        let query = crate::Query::all([crate::Query::term("error"), crate::Query::term("disk1")]);
        let (postings, trace) = searcher.execute_lookup(&query).unwrap();
        let stats = store.stats();
        assert_eq!(
            stats.batches, 1,
            "3 segments x 2 terms coalesce into one batch"
        );
        assert_eq!(trace.round_trips(), 1);
        // Segment 1's 10 docs all survive; other segments may contribute
        // false-positive candidates (removed later by the verify pass).
        assert!(postings.len() >= 10, "candidates union across segments");

        // Full execution: one lookup batch + one document batch.
        store.reset_stats();
        let r = searcher
            .execute(&query, &crate::QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 10);
        assert!(r.hits.iter().all(|h| h.text.contains("disk1")));
        assert_eq!(store.stats().batches, 2, "lookup batch + document batch");
        assert_eq!(r.trace.round_trips(), 2);
    }

    #[test]
    fn top_k_truncates_across_segments() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        for day in 0..3 {
            let lines: Vec<String> = (0..30).map(|i| format!("common tail{day}-{i}")).collect();
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let c = corpus_of(store.clone(), &format!("c/day{day}"), &refs);
            mgr.append(&c, &config()).unwrap();
        }
        let searcher = mgr.open().unwrap();
        let r = searcher.search("common", Some(7)).unwrap();
        assert_eq!(r.hits.len(), 7);
    }

    #[test]
    fn concurrent_appends_keep_every_segment() {
        // The PR-3 regression: two managers over one store race appends;
        // with the old len()-derived prefixes + blind manifest put, one
        // appender's segment silently vanished. With CAS both survive.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let threads = 4;
        let per_thread = 3;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                s.spawn(move || {
                    let mgr = SegmentManager::new(store.clone(), "idx");
                    for i in 0..per_thread {
                        let blob = format!("c/t{t}b{i}");
                        let line = format!("doc{t}x{i} shared");
                        let c = corpus_of(store.clone(), &blob, &[&line]);
                        mgr.append(&c, &config()).unwrap();
                    }
                });
            }
        });
        let mgr = SegmentManager::new(store, "idx");
        let manifest = mgr.manifest().unwrap();
        assert_eq!(manifest.segments.len(), threads * per_thread);
        assert_eq!(manifest.generation, (threads * per_thread) as u64);
        let searcher = mgr.open().unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                let hits = searcher.search(&format!("doc{t}x{i}"), None).unwrap().hits;
                assert_eq!(hits.len(), 1, "doc{t}x{i} must be findable");
            }
        }
        assert_eq!(
            searcher.search("shared", None).unwrap().hits.len(),
            threads * per_thread
        );
    }
}
