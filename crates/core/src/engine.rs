//! The [`SearchEngine`] trait: the common interface the benchmark harness
//! drives for Airphant and every baseline (Lucene-like, Elasticsearch-like,
//! SQLite-like, HashTable).
//!
//! Each engine indexes the same parsed corpus, persists its structures in
//! the same object store, and answers [`Query`] ASTs through
//! [`SearchEngine::execute`], reporting a [`QueryTrace`] so the
//! experiments can compare end-to-end latency, term lookup latency, the
//! wait/download breakdown, and — via
//! [`QueryTrace::round_trips`](airphant_storage::QueryTrace::round_trips)
//! — the dependent round-trip structure that the paper's analysis
//! attributes the latency differences to.

use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::Result;
use airphant_storage::QueryTrace;
use iou_sketch::PostingsList;

/// A keyword-search engine under benchmark.
///
/// Engines are `Send + Sync`: one engine instance (over one shared,
/// byte-budgeted cache) is driven concurrently by every worker of a
/// [`QueryServer`](crate::serve::QueryServer), so the whole read path must
/// be shareable across threads. Per-query state (the
/// [`QueryTrace`], candidate postings, sampled fetches) lives on the
/// calling thread's stack — implementations must not route it through
/// shared mutable cells.
pub trait SearchEngine: Send + Sync {
    /// Engine name as it appears in the paper's figures
    /// (e.g. `"AIRPHANT"`, `"Lucene"`, `"SQLite"`).
    fn name(&self) -> &'static str;

    /// One-time per-corpus initialization cost (header download, snapshot
    /// mount, …). Zero trace for engines with no init step.
    fn init_trace(&self) -> QueryTrace {
        QueryTrace::new()
    }

    /// Term-index lookup only: resolve `word` to its (possibly
    /// approximate) postings list. This is what Figure 14 measures.
    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)>;

    /// Execute a full [`Query`] AST: resolve every term/gram, evaluate
    /// the boolean algebra, fetch candidate documents, and filter to
    /// exact results. Airphant's implementation resolves the *whole*
    /// query in a single superpost batch; hierarchical baselines pay
    /// their per-atom round-trip structure.
    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult>;

    /// Single-keyword search; `top_k = Some(k)` bounds the result set.
    ///
    /// Default shim over [`SearchEngine::execute`] with a bare
    /// [`Query::Term`] — engines only implement `execute`.
    fn search(&self, word: &str, top_k: Option<usize>) -> Result<SearchResult> {
        self.execute(&Query::term(word), &QueryOptions::new().with_top_k(top_k))
    }

    /// Total bytes of index structures this engine persisted (for the
    /// storage-usage comparisons, Figure 15b).
    fn index_bytes(&self) -> u64;
}

/// A [`SearchEngine`] whose execution can be driven in *stages* by an
/// external scheduler: plan a storage batch, suspend while it is in
/// flight, then complete from the fetched bytes.
///
/// The async serving core ([`crate::serve::AsyncQueryServer`]) needs
/// direct access to the per-segment [`Searcher`]s so it can run the
/// staged planner halves in `crate::plan` itself — suspending the query
/// on the simulated clock between dispatch and completion instead of
/// blocking an OS thread inside [`SearchEngine::execute`]. Because both
/// paths run the *same* staged code, async results are byte-for-byte
/// identical to the sync worker-pool path by construction.
///
/// The callback shape keeps the trait object-safe while letting
/// implementations hand out borrowed segment slices without allocating
/// on every query (the segmented impl materializes a short-lived
/// `Vec<&Searcher>`).
pub trait StagedEngine: SearchEngine {
    /// Invoke `f` with this engine's live segment set. The slice is only
    /// valid for the duration of the call.
    fn with_segments(&self, f: &mut dyn FnMut(&[&crate::Searcher]));
}

impl SearchEngine for crate::Searcher {
    fn name(&self) -> &'static str {
        "AIRPHANT"
    }

    fn init_trace(&self) -> QueryTrace {
        crate::Searcher::init_trace(self).clone()
    }

    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        crate::Searcher::lookup(self, word)
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        crate::Searcher::execute(self, query, opts)
    }

    fn index_bytes(&self) -> u64 {
        // Header + superpost blocks under the index prefix.
        self.index_usage_bytes()
    }
}

impl StagedEngine for crate::Searcher {
    fn with_segments(&self, f: &mut dyn FnMut(&[&crate::Searcher])) {
        f(&[self]);
    }
}

impl StagedEngine for crate::SegmentedSearcher {
    fn with_segments(&self, f: &mut dyn FnMut(&[&crate::Searcher])) {
        let refs: Vec<&crate::Searcher> = self.segments().iter().collect();
        f(&refs);
    }
}

impl SearchEngine for crate::SegmentedSearcher {
    fn name(&self) -> &'static str {
        "AIRPHANT-segmented"
    }

    fn init_trace(&self) -> QueryTrace {
        // Segment headers are independent fetches: opening the live set
        // costs one concurrent round of header downloads.
        QueryTrace::merge_parallel(
            &self
                .segments()
                .iter()
                .map(|s| s.init_trace().clone())
                .collect::<Vec<_>>(),
        )
    }

    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        self.execute_lookup(&Query::term(word))
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        crate::SegmentedSearcher::execute(self, query, opts)
    }

    fn index_bytes(&self) -> u64 {
        self.segments().iter().map(|s| s.index_usage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use crate::Searcher;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use std::sync::Arc;

    #[test]
    fn searcher_implements_engine() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put("c/b", Bytes::from_static(b"alpha beta\ngamma"))
            .unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(AirphantConfig::default().with_total_bins(64))
            .build(&corpus, "idx")
            .unwrap();
        let engine: Box<dyn SearchEngine> = Box::new(Searcher::open(store, "idx").unwrap());
        assert_eq!(engine.name(), "AIRPHANT");
        let r = engine.search("alpha", None).unwrap();
        assert_eq!(r.hits.len(), 1);
        let (postings, _) = engine.lookup("gamma").unwrap();
        assert!(!postings.is_empty());
        assert!(engine.index_bytes() > 0);
        assert!(engine.init_trace().bytes() > 0);
    }

    #[test]
    fn trait_search_shim_equals_execute() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put("c/b", Bytes::from_static(b"alpha beta\nalpha gamma\nbeta"))
            .unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(AirphantConfig::default().with_total_bins(64))
            .build(&corpus, "idx")
            .unwrap();
        let engine: Box<dyn SearchEngine> = Box::new(Searcher::open(store, "idx").unwrap());
        let via_shim = engine.search("alpha", Some(5)).unwrap();
        let via_execute = engine
            .execute(&Query::term("alpha"), &QueryOptions::new().top_k(5))
            .unwrap();
        let texts = |r: &crate::SearchResult| {
            let mut v: Vec<String> = r.hits.iter().map(|h| h.text.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(texts(&via_shim), texts(&via_execute));
    }
}
