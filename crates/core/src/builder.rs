//! The Airphant Builder (§III-C0a): profile → optimize → superposts →
//! compaction → header.
//!
//! "Builder creates a single IoU sketch per corpus. … Builder first creates
//! superposts … The collection of superposts are concatenated into a single
//! blob using a compaction encoding. … Next, Builder creates a MHT \[and\]
//! stores seeds of hash functions … in the same file. This file is
//! persisted as another blob."

use crate::config::AirphantConfig;
use crate::error::AirphantError;
use crate::Result;
use airphant_corpus::{Corpus, CorpusProfile};
use bytes::BytesMut;
use iou_sketch::encoding::{encode_superpost, BinPointer, StringTable};
use iou_sketch::{
    optimize_layers, CommonWords, CorpusShape, FalsePositiveModel, Mht, PostingsList, RejectReason,
    SketchBuilder, SketchConfig,
};
use std::collections::HashMap;

/// Summary of a completed index build.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Layers actually built (`L*` plus any overprovision).
    pub layers: usize,
    /// The optimized `L*` (equals `layers` when no overprovision).
    pub optimal_layers: usize,
    /// Expected false positives `F(L)` of the structure actually built,
    /// predicted by the model (Equation 2).
    pub expected_fp: Option<f64>,
    /// Number of compacted superpost blocks written.
    pub blocks: usize,
    /// Total bytes of superpost blocks.
    pub superpost_bytes: u64,
    /// Bytes of the header block.
    pub header_bytes: u64,
    /// Number of distinct words inserted.
    pub words: u64,
    /// Number of documents indexed.
    pub docs: u64,
    /// Number of common words stored exactly.
    pub common_words: usize,
    /// On-wire segment format the header was written in.
    pub format: iou_sketch::FormatVersion,
    /// The corpus profile collected during the build.
    pub profile: CorpusProfile,
}

impl BuildReport {
    /// Total index footprint in cloud storage.
    pub fn index_bytes(&self) -> u64 {
        self.superpost_bytes + self.header_bytes
    }
}

/// Blob name of the index header under `prefix`.
pub fn header_blob(prefix: &str) -> String {
    format!("{prefix}/header")
}

/// Blob name of superpost block `i` under `prefix`.
pub fn block_blob(prefix: &str, block: u32) -> String {
    format!("{prefix}/superposts/{block:05}")
}

/// The Airphant Builder.
#[derive(Debug, Clone)]
pub struct Builder {
    config: AirphantConfig,
}

/// Accumulates encoded superposts into fixed-target-size blocks and hands
/// out `(block, offset, len)` pointers — the compaction of §IV-C, which
/// "avoid[s] creating too many tiny or a few huge files".
struct BlockWriter<'a> {
    store: &'a dyn airphant_storage::ObjectStore,
    prefix: &'a str,
    target: usize,
    current: BytesMut,
    block_idx: u32,
    total_bytes: u64,
    blocks: usize,
    /// Byte size of each flushed block, in block order — recorded in the
    /// v2 header's layer directory as the Data-class byte ranges.
    block_sizes: Vec<u64>,
}

impl<'a> BlockWriter<'a> {
    fn new(store: &'a dyn airphant_storage::ObjectStore, prefix: &'a str, target: usize) -> Self {
        BlockWriter {
            store,
            prefix,
            target: target.max(1),
            current: BytesMut::new(),
            block_idx: 0,
            total_bytes: 0,
            blocks: 0,
            block_sizes: Vec::new(),
        }
    }

    fn append(&mut self, encoded: &[u8]) -> Result<BinPointer> {
        if !self.current.is_empty() && self.current.len() + encoded.len() > self.target {
            self.flush()?;
        }
        let ptr = BinPointer::new(
            self.block_idx,
            self.current.len() as u64,
            encoded.len() as u32,
        );
        self.current.extend_from_slice(encoded);
        Ok(ptr)
    }

    fn flush(&mut self) -> Result<()> {
        if self.current.is_empty() {
            return Ok(());
        }
        let name = block_blob(self.prefix, self.block_idx);
        let data = std::mem::take(&mut self.current).freeze();
        self.total_bytes += data.len() as u64;
        self.block_sizes.push(data.len() as u64);
        self.store.put(&name, data)?;
        self.block_idx += 1;
        self.blocks += 1;
        Ok(())
    }
}

/// Encode every layer's superposts concurrently, preserving bin order.
/// Work splits into contiguous chunks across available cores.
fn encode_layers_parallel(bins: &[Vec<PostingsList>]) -> Vec<Vec<bytes::Bytes>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    bins.iter()
        .map(|layer| {
            if workers <= 1 || layer.len() < 256 {
                return layer.iter().map(encode_superpost).collect();
            }
            let chunk = layer.len().div_ceil(workers);
            let mut out: Vec<bytes::Bytes> = Vec::with_capacity(layer.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = layer
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || part.iter().map(encode_superpost).collect::<Vec<_>>())
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("encode worker"));
                }
            });
            out
        })
        .collect()
}

impl Builder {
    /// Create a builder with the given configuration.
    pub fn new(config: AirphantConfig) -> Self {
        Builder { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AirphantConfig {
        &self.config
    }

    /// Build and persist an index for `corpus` under `prefix`, profiling
    /// the corpus first.
    pub fn build(&self, corpus: &Corpus, prefix: &str) -> Result<BuildReport> {
        let profile = corpus.profile()?;
        self.build_with_profile(corpus, prefix, profile)
    }

    /// Build with a pre-computed profile (lets experiments reuse one
    /// profiling pass across many structure configurations).
    pub fn build_with_profile(
        &self,
        corpus: &Corpus,
        prefix: &str,
        profile: CorpusProfile,
    ) -> Result<BuildReport> {
        self.config.validate()?;

        // --- Structure optimization (Algorithm 1), unless manual. ---
        let sketch_cfg_probe = SketchConfig {
            total_bins: self.config.total_bins,
            layers: 1,
            common_fraction: self.config.common_fraction,
        };
        let sketch_bins = sketch_cfg_probe.sketch_bins();
        let shape =
            CorpusShape::uniform(profile.doc_distinct_sizes.iter().copied(), profile.n_terms);
        let model = FalsePositiveModel::new(shape, sketch_bins.max(1));
        let optimal_layers = match self.config.manual_layers {
            Some(l) => l,
            None => {
                let outcome =
                    optimize_layers(&model, self.config.accuracy_f0).map_err(|r| match r {
                        RejectReason::LowerBoundExceeded { lower_bound } => {
                            AirphantError::Sketch(iou_sketch::SketchError::Infeasible {
                                lower_bound,
                                requested: self.config.accuracy_f0,
                            })
                        }
                        RejectReason::SearchExhausted { best_f, .. } => {
                            AirphantError::Sketch(iou_sketch::SketchError::Infeasible {
                                lower_bound: best_f,
                                requested: self.config.accuracy_f0,
                            })
                        }
                    })?;
                outcome.layers as usize
            }
        };
        let layers = optimal_layers + self.config.overprovision_layers;
        // Model the expected false positives of the structure actually
        // built (manual structures included): the Searcher's top-K sampler
        // (Equation 6) needs the real F of this (B, L), not the constraint.
        let modeled_fp = model.expected_fp(layers as f64);
        let expected_fp = Some(modeled_fp);

        // --- Common-word selection (§IV-E). ---
        let sketch_config = SketchConfig {
            total_bins: self.config.total_bins,
            layers,
            common_fraction: self.config.common_fraction,
        };
        sketch_config.validate()?;
        let common = CommonWords::select(
            profile.doc_freqs.iter().map(|(w, &f)| (w.clone(), f)),
            sketch_config.common_bins(),
        );

        // --- Inverted postings accumulation (one pass over documents). ---
        let mut string_table = StringTable::new();
        let mut inverted: HashMap<String, Vec<iou_sketch::Posting>> = HashMap::new();
        let tokenizer = corpus.tokenizer().clone();
        let mut docs = 0u64;
        corpus.for_each_document(|doc| {
            docs += 1;
            let blob_id = string_table.intern(&doc.blob);
            let posting = iou_sketch::Posting::new(blob_id, doc.offset, doc.len);
            let mut distinct: Vec<String> = tokenizer.tokens(&doc.text);
            distinct.sort_unstable();
            distinct.dedup();
            for w in distinct {
                inverted.entry(w).or_default().push(posting);
            }
        })?;

        // --- Sketch construction. ---
        let mut sb = SketchBuilder::new(sketch_config.clone(), self.config.seed);
        sb.set_common_words(common);
        let words = inverted.len() as u64;
        // Vocabulary: every distinct token, sorted. Serialized only in v2
        // headers (its own Index-class section) to back prefix/fuzzy and
        // short-substring resolution; v1 stays byte-identical to before.
        let vocab = if self.config.format == iou_sketch::FormatVersion::V2 {
            let mut terms: Vec<String> = inverted.keys().cloned().collect();
            terms.sort_unstable();
            Some(iou_sketch::Vocabulary::build(terms)?)
        } else {
            None
        };
        for (word, postings) in inverted {
            sb.insert(&word, &PostingsList::from_postings(postings));
        }
        let sketch = sb.freeze();
        let (_, family, bins, common) = sketch.into_parts();

        // --- Superpost compaction (§IV-C). ---
        // Encoding is embarrassingly parallel (the paper builds on a
        // 32-vCPU VM); block layout stays deterministic because append
        // order is preserved after the parallel encode.
        let store = corpus.store();
        let mut writer = BlockWriter::new(store.as_ref(), prefix, self.config.block_target_bytes);
        let encoded_layers = encode_layers_parallel(&bins);
        let mut pointers: Vec<Vec<BinPointer>> = Vec::with_capacity(layers);
        for encoded_layer in &encoded_layers {
            let mut layer_ptrs = Vec::with_capacity(encoded_layer.len());
            for encoded in encoded_layer {
                layer_ptrs.push(writer.append(encoded)?);
            }
            pointers.push(layer_ptrs);
        }
        let mut common_ptrs: HashMap<String, BinPointer> = HashMap::new();
        let common_map = common.into_map();
        let common_count = common_map.len();
        // Deterministic block layout: write common words sorted.
        let mut common_sorted: Vec<(String, PostingsList)> = common_map.into_iter().collect();
        common_sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (word, postings) in common_sorted {
            let encoded = encode_superpost(&postings);
            common_ptrs.insert(word, writer.append(&encoded)?);
        }
        writer.flush()?;

        // --- Header block (MHT + seeds + string table + metadata). ---
        let meta = vec![
            ("f0".to_string(), self.config.accuracy_f0.to_string()),
            ("expected_fp".to_string(), modeled_fp.to_string()),
            ("optimal_layers".to_string(), optimal_layers.to_string()),
            ("docs".to_string(), docs.to_string()),
            ("words".to_string(), words.to_string()),
            ("topk_delta".to_string(), self.config.topk_delta.to_string()),
        ];
        let mht = Mht::new(
            sketch_config,
            family,
            pointers,
            common_ptrs,
            string_table,
            meta,
        )
        .with_vocab(vocab);
        let header = mht
            .to_header()
            .encode_with(self.config.format, &writer.block_sizes);
        let header_bytes = header.len() as u64;
        store.put(&header_blob(prefix), header)?;

        Ok(BuildReport {
            layers,
            optimal_layers,
            expected_fp,
            blocks: writer.blocks,
            superpost_bytes: writer.total_bytes,
            header_bytes,
            words,
            docs,
            common_words: common_count,
            format: self.config.format,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use std::sync::Arc;

    fn small_corpus(store: Arc<dyn ObjectStore>) -> Corpus {
        store
            .put(
                "c/blob-0",
                Bytes::from_static(b"hello world\nhello airphant\ncloud search engine"),
            )
            .unwrap();
        store
            .put("c/blob-1", Bytes::from_static(b"world of cloud storage"))
            .unwrap();
        Corpus::new(
            store,
            vec!["c/blob-0".into(), "c/blob-1".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    #[test]
    fn build_persists_header_and_blocks() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = small_corpus(store.clone());
        let report = Builder::new(AirphantConfig::default().with_total_bins(128))
            .build(&corpus, "idx")
            .unwrap();
        assert!(store.exists("idx/header"));
        assert!(report.blocks >= 1);
        assert!(store.exists(&block_blob("idx", 0)));
        assert_eq!(report.docs, 4);
        assert!(report.words >= 8);
        assert!(report.index_bytes() > 0);
        assert!(report.expected_fp.is_some());
    }

    #[test]
    fn manual_layers_skip_optimization() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = small_corpus(store.clone());
        let report = Builder::new(
            AirphantConfig::default()
                .with_total_bins(64)
                .with_manual_layers(3),
        )
        .build(&corpus, "idx")
        .unwrap();
        assert_eq!(report.layers, 3);
        assert_eq!(report.optimal_layers, 3);
        // Even manual structures get a modeled expected-FP figure.
        assert!(report.expected_fp.is_some());
    }

    #[test]
    fn overprovision_adds_layers() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = small_corpus(store.clone());
        let report = Builder::new(
            AirphantConfig::default()
                .with_total_bins(128)
                .with_manual_layers(2)
                .with_overprovision(2),
        )
        .build(&corpus, "idx")
        .unwrap();
        assert_eq!(report.optimal_layers, 2);
        assert_eq!(report.layers, 4);
    }

    #[test]
    fn infeasible_accuracy_is_rejected() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = small_corpus(store.clone());
        let result = Builder::new(
            AirphantConfig::default()
                .with_total_bins(8)
                .with_common_fraction(0.0)
                .with_accuracy(1e-30),
        )
        .build(&corpus, "idx");
        assert!(matches!(
            result,
            Err(AirphantError::Sketch(
                iou_sketch::SketchError::Infeasible { .. }
            ))
        ));
    }

    #[test]
    fn block_writer_splits_at_target() {
        let store = InMemoryStore::new();
        let mut w = BlockWriter::new(&store, "t", 100);
        let chunk = vec![0u8; 60];
        let p0 = w.append(&chunk).unwrap();
        let p1 = w.append(&chunk).unwrap(); // would exceed 100 → new block
        let p2 = w.append(&chunk).unwrap();
        w.flush().unwrap();
        assert_eq!((p0.block, p0.offset), (0, 0));
        assert_eq!((p1.block, p1.offset), (1, 0));
        assert_eq!((p2.block, p2.offset), (2, 0));
        assert_eq!(w.blocks, 3);
        assert_eq!(store.list("t/").unwrap().len(), 3);
    }

    #[test]
    fn block_writer_packs_small_superposts_together() {
        let store = InMemoryStore::new();
        let mut w = BlockWriter::new(&store, "t", 1_000);
        let mut pointers = Vec::new();
        for _ in 0..10 {
            pointers.push(w.append(&[1, 2, 3]).unwrap());
        }
        w.flush().unwrap();
        assert_eq!(w.blocks, 1, "30 bytes fit one 1000-byte block");
        assert!(pointers.iter().all(|p| p.block == 0));
        assert_eq!(pointers[9].offset, 27);
    }

    #[test]
    fn build_report_words_match_profile_terms() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = small_corpus(store.clone());
        let report = Builder::new(AirphantConfig::default().with_total_bins(128))
            .build(&corpus, "idx")
            .unwrap();
        assert_eq!(report.words, report.profile.n_terms);
    }
}

#[cfg(test)]
mod parallel_encode_tests {
    use super::*;
    use iou_sketch::PostingsList;

    #[test]
    fn parallel_encode_matches_sequential_order() {
        // A layer large enough to trip the parallel path.
        let layer: Vec<PostingsList> = (0..1_000u64)
            .map(|i| PostingsList::from_doc_ids(&[i, i + 1, i * 3]))
            .collect();
        let bins = vec![layer.clone(), layer[..300].to_vec()];
        let parallel = encode_layers_parallel(&bins);
        let sequential: Vec<Vec<bytes::Bytes>> = bins
            .iter()
            .map(|l| l.iter().map(encode_superpost).collect())
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn small_layers_take_sequential_path() {
        let bins = vec![vec![PostingsList::from_doc_ids(&[1])]];
        let encoded = encode_layers_parallel(&bins);
        assert_eq!(encoded.len(), 1);
        assert_eq!(encoded[0].len(), 1);
    }
}
