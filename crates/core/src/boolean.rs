//! Boolean queries over the IoU Sketch (§IV-F).
//!
//! "IoU Sketch executes any Boolean query by distributing its query
//! function to each term predicate: `Q(⋁_i ⋀_j w_ij) = ⋃_i ⋂_j Q(w_ij)`".
//! Intersections reduce false positives, unions add them; the document
//! content filter at the end restores exact results either way.

use crate::result::SearchResult;
use crate::retrieval::fetch_and_filter;
use crate::searcher::Searcher;
use crate::Result;
use airphant_storage::QueryTrace;
use iou_sketch::PostingsList;

/// A Boolean keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolQuery {
    /// A single keyword.
    Term(String),
    /// All sub-queries must match.
    And(Vec<BoolQuery>),
    /// Any sub-query may match.
    Or(Vec<BoolQuery>),
}

impl BoolQuery {
    /// Convenience constructor for a term.
    pub fn term(word: impl Into<String>) -> Self {
        BoolQuery::Term(word.into())
    }

    /// Conjunction of queries.
    pub fn and(queries: impl IntoIterator<Item = BoolQuery>) -> Self {
        BoolQuery::And(queries.into_iter().collect())
    }

    /// Disjunction of queries.
    pub fn or(queries: impl IntoIterator<Item = BoolQuery>) -> Self {
        BoolQuery::Or(queries.into_iter().collect())
    }

    /// All distinct terms mentioned by the query, in first-appearance order.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BoolQuery::Term(w) => {
                if !out.contains(&w.as_str()) {
                    out.push(w);
                }
            }
            BoolQuery::And(qs) | BoolQuery::Or(qs) => {
                for q in qs {
                    q.collect_terms(out);
                }
            }
        }
    }

    /// Evaluate the query over per-term postings (the `⋃⋂Q(w)` identity).
    /// Unknown terms resolve to the empty list.
    pub fn evaluate(
        &self,
        postings_of: &dyn Fn(&str) -> PostingsList,
    ) -> PostingsList {
        match self {
            BoolQuery::Term(w) => postings_of(w),
            BoolQuery::And(qs) => {
                let mut lists = qs.iter().map(|q| q.evaluate(postings_of));
                let first = lists.next().unwrap_or_default();
                lists.fold(first, |acc, l| acc.intersect(&l))
            }
            BoolQuery::Or(qs) => qs
                .iter()
                .map(|q| q.evaluate(postings_of))
                .fold(PostingsList::new(), |acc, l| acc.union(&l)),
        }
    }

    /// Whether a document's *exact* word set satisfies the query —
    /// the content-filter predicate.
    pub fn matches(&self, has_word: &dyn Fn(&str) -> bool) -> bool {
        match self {
            BoolQuery::Term(w) => has_word(w),
            BoolQuery::And(qs) => qs.iter().all(|q| q.matches(has_word)),
            BoolQuery::Or(qs) => qs.iter().any(|q| q.matches(has_word)),
        }
    }
}

impl Searcher {
    /// Execute a Boolean query: one lookup per distinct term (each a single
    /// concurrent superpost batch), set algebra over the per-term postings,
    /// then document fetch + exact Boolean filtering.
    pub fn search_boolean(&self, query: &BoolQuery) -> Result<SearchResult> {
        let mut trace = QueryTrace::new();
        // Resolve every distinct term once.
        let mut term_postings: Vec<(String, PostingsList)> = Vec::new();
        for term in query.terms() {
            let (list, t) = self.lookup(term)?;
            trace.extend(&t);
            term_postings.push((term.to_owned(), list));
        }
        let lookup = |w: &str| -> PostingsList {
            term_postings
                .iter()
                .find(|(t, _)| t == w)
                .map(|(_, l)| l.clone())
                .unwrap_or_default()
        };
        let candidates_list = query.evaluate(&lookup);
        let candidates: Vec<iou_sketch::Posting> =
            candidates_list.iter().copied().collect();

        let tokenizer = self.tokenizer().clone();
        let predicate = move |text: &str| {
            let tokens = tokenizer.tokens(text);
            query.matches(&|w| tokens.iter().any(|t| t == w))
        };
        let (hits, dropped) = fetch_and_filter(
            self.store_dyn(),
            self.mht().string_table(),
            &candidates,
            &predicate,
            &mut trace,
        )?;
        Ok(SearchResult {
            hits,
            trace,
            candidates: candidates.len(),
            false_positives_removed: dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use std::sync::Arc;

    fn hits_texts(r: &SearchResult) -> Vec<&str> {
        let mut v: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
        v.sort();
        v
    }

    fn searcher() -> Searcher {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put(
                "c/b",
                Bytes::from_static(
                    b"error disk\nerror network\nwarn disk\ninfo startup\nerror disk network",
                ),
            )
            .unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(128)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
        Searcher::open(store, "idx").unwrap()
    }

    #[test]
    fn and_query_intersects() {
        let s = searcher();
        let q = BoolQuery::and([BoolQuery::term("error"), BoolQuery::term("disk")]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(hits_texts(&r), vec!["error disk", "error disk network"]);
    }

    #[test]
    fn or_query_unions() {
        let s = searcher();
        let q = BoolQuery::or([BoolQuery::term("warn"), BoolQuery::term("info")]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(hits_texts(&r), vec!["info startup", "warn disk"]);
    }

    #[test]
    fn nested_dnf_query() {
        // (error AND network) OR (warn AND disk)
        let s = searcher();
        let q = BoolQuery::or([
            BoolQuery::and([BoolQuery::term("error"), BoolQuery::term("network")]),
            BoolQuery::and([BoolQuery::term("warn"), BoolQuery::term("disk")]),
        ]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(
            hits_texts(&r),
            vec!["error disk network", "error network", "warn disk"]
        );
    }

    #[test]
    fn single_term_boolean_matches_plain_search() {
        let s = searcher();
        let b = s.search_boolean(&BoolQuery::term("error")).unwrap();
        let p = s.search("error", None).unwrap();
        assert_eq!(hits_texts(&b), hits_texts(&p));
    }

    #[test]
    fn unknown_terms_resolve_empty() {
        let s = searcher();
        let q = BoolQuery::and([BoolQuery::term("error"), BoolQuery::term("zzz-missing")]);
        let r = s.search_boolean(&q).unwrap();
        assert!(r.hits.is_empty());
        // OR with a missing term degrades gracefully.
        let q = BoolQuery::or([BoolQuery::term("info"), BoolQuery::term("zzz-missing")]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(hits_texts(&r), vec!["info startup"]);
    }

    #[test]
    fn terms_deduplicates() {
        let q = BoolQuery::or([
            BoolQuery::term("a"),
            BoolQuery::and([BoolQuery::term("a"), BoolQuery::term("b")]),
        ]);
        assert_eq!(q.terms(), vec!["a", "b"]);
    }

    #[test]
    fn evaluate_identity_on_sets() {
        // Pure set-algebra check of Q(⋁⋀) = ⋃⋂Q.
        let pa = PostingsList::from_doc_ids(&[1, 2, 3]);
        let pb = PostingsList::from_doc_ids(&[2, 3, 4]);
        let pc = PostingsList::from_doc_ids(&[5]);
        let lookup = |w: &str| match w {
            "a" => pa.clone(),
            "b" => pb.clone(),
            "c" => pc.clone(),
            _ => PostingsList::new(),
        };
        let q = BoolQuery::or([
            BoolQuery::and([BoolQuery::term("a"), BoolQuery::term("b")]),
            BoolQuery::term("c"),
        ]);
        let got = q.evaluate(&lookup);
        assert_eq!(got, PostingsList::from_doc_ids(&[2, 3, 5]));
    }

    #[test]
    fn empty_and_or_edge_cases() {
        let lookup = |_: &str| PostingsList::from_doc_ids(&[1]);
        assert!(BoolQuery::And(vec![]).evaluate(&lookup).is_empty());
        assert!(BoolQuery::Or(vec![]).evaluate(&lookup).is_empty());
        assert!(BoolQuery::And(vec![]).matches(&|_| false));
        assert!(!BoolQuery::Or(vec![]).matches(&|_| true));
    }
}
