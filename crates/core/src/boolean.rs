//! Boolean-query compatibility shims (§IV-F).
//!
//! The boolean surface now lives on the unified [`Query`] AST and the
//! [`Searcher::execute`] planner, which resolves *every* term of a
//! compound query in one superpost batch. The pre-0.2 `search_boolean`
//! implementation issued one batch per term; the method survives below
//! only as a thin deprecated wrapper that builds a [`Query`] and
//! executes it, so existing callers migrate at their own pace. The
//! tests double as equivalence tests between the two surfaces.
//! See `docs/adr/001-unified-query-api.md` for the deprecation path.

use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::searcher::Searcher;
use crate::Result;

/// The pre-0.2 name of the query AST.
///
/// `BoolQuery`'s `Term` / `And` / `Or` variants and its `term` / `and` /
/// `or` constructors are all still available — they are [`Query`]'s.
#[deprecated(since = "0.2.0", note = "use `airphant::Query`")]
pub type BoolQuery = Query;

impl Searcher {
    /// Execute a Boolean query.
    ///
    /// Deprecated shim over [`Searcher::execute`] with default
    /// [`QueryOptions`]; the planner fetches all terms' superposts in a
    /// single batch instead of one batch per term.
    #[deprecated(since = "0.2.0", note = "use `Searcher::execute`")]
    pub fn search_boolean(&self, query: &Query) -> Result<SearchResult> {
        self.execute(query, &QueryOptions::new())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::AirphantConfig;
    use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
    use airphant_storage::{InMemoryStore, ObjectStore};
    use bytes::Bytes;
    use iou_sketch::PostingsList;
    use std::sync::Arc;

    fn hits_texts(r: &SearchResult) -> Vec<&str> {
        let mut v: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
        v.sort();
        v
    }

    fn searcher() -> Searcher {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        store
            .put(
                "c/b",
                Bytes::from_static(
                    b"error disk\nerror network\nwarn disk\ninfo startup\nerror disk network",
                ),
            )
            .unwrap();
        let corpus = Corpus::new(
            store.clone(),
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(128)
                .with_manual_layers(2)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
        Searcher::open(store, "idx").unwrap()
    }

    #[test]
    fn and_query_intersects() {
        let s = searcher();
        let q = BoolQuery::and([BoolQuery::term("error"), BoolQuery::term("disk")]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(hits_texts(&r), vec!["error disk", "error disk network"]);
    }

    #[test]
    fn or_query_unions() {
        let s = searcher();
        let q = BoolQuery::or([BoolQuery::term("warn"), BoolQuery::term("info")]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(hits_texts(&r), vec!["info startup", "warn disk"]);
    }

    #[test]
    fn nested_dnf_query() {
        // (error AND network) OR (warn AND disk)
        let s = searcher();
        let q = BoolQuery::or([
            BoolQuery::and([BoolQuery::term("error"), BoolQuery::term("network")]),
            BoolQuery::and([BoolQuery::term("warn"), BoolQuery::term("disk")]),
        ]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(
            hits_texts(&r),
            vec!["error disk network", "error network", "warn disk"]
        );
    }

    #[test]
    fn single_term_boolean_matches_plain_search() {
        let s = searcher();
        let b = s.search_boolean(&BoolQuery::term("error")).unwrap();
        let p = s.search("error", None).unwrap();
        assert_eq!(hits_texts(&b), hits_texts(&p));
    }

    #[test]
    fn shim_agrees_with_execute() {
        let s = searcher();
        let q = Query::or([
            Query::and([Query::term("error"), Query::term("disk")]),
            Query::term("info"),
        ]);
        let old = s.search_boolean(&q).unwrap();
        let new = s.execute(&q, &QueryOptions::new()).unwrap();
        assert_eq!(hits_texts(&old), hits_texts(&new));
        assert_eq!(old.candidates, new.candidates);
    }

    #[test]
    fn unknown_terms_resolve_empty() {
        let s = searcher();
        let q = BoolQuery::and([BoolQuery::term("error"), BoolQuery::term("zzz-missing")]);
        let r = s.search_boolean(&q).unwrap();
        assert!(r.hits.is_empty());
        // OR with a missing term degrades gracefully.
        let q = BoolQuery::or([BoolQuery::term("info"), BoolQuery::term("zzz-missing")]);
        let r = s.search_boolean(&q).unwrap();
        assert_eq!(hits_texts(&r), vec!["info startup"]);
    }

    #[test]
    fn terms_deduplicates() {
        let q = BoolQuery::or([
            BoolQuery::term("a"),
            BoolQuery::and([BoolQuery::term("a"), BoolQuery::term("b")]),
        ]);
        assert_eq!(q.terms(), vec!["a", "b"]);
    }

    #[test]
    fn evaluate_identity_on_sets() {
        // Pure set-algebra check of Q(⋁⋀) = ⋃⋂Q.
        let pa = PostingsList::from_doc_ids(&[1, 2, 3]);
        let pb = PostingsList::from_doc_ids(&[2, 3, 4]);
        let pc = PostingsList::from_doc_ids(&[5]);
        let lookup = |w: &str| match w {
            "a" => pa.clone(),
            "b" => pb.clone(),
            "c" => pc.clone(),
            _ => PostingsList::new(),
        };
        let q = BoolQuery::or([
            BoolQuery::and([BoolQuery::term("a"), BoolQuery::term("b")]),
            BoolQuery::term("c"),
        ]);
        let got = q.evaluate(&lookup);
        assert_eq!(got, PostingsList::from_doc_ids(&[2, 3, 5]));
    }

    #[test]
    fn empty_and_or_edge_cases() {
        let lookup = |_: &str| PostingsList::from_doc_ids(&[1]);
        assert!(BoolQuery::And(vec![]).evaluate(&lookup).is_empty());
        assert!(BoolQuery::Or(vec![]).evaluate(&lookup).is_empty());
        // Empty groups match nothing — candidates and verify agree (the
        // pre-0.2 vacuously-true empty AND let sketch false positives
        // through the verify pass when nested under an OR).
        assert!(!BoolQuery::And(vec![]).matches(&|_| false));
        assert!(!BoolQuery::Or(vec![]).matches(&|_| true));
    }

    #[test]
    fn empty_and_under_or_keeps_perfect_precision() {
        // Regression: Or([And([]), term]) must behave exactly like the
        // bare term — no false positives admitted by the empty group.
        let s = searcher();
        let bare = s.search("error", None).unwrap();
        let wrapped = s
            .execute(
                &Query::or([Query::And(vec![]), Query::term("error")]),
                &QueryOptions::new(),
            )
            .unwrap();
        assert_eq!(hits_texts(&bare), hits_texts(&wrapped));
    }
}
