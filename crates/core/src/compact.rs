//! Segment compaction and garbage collection — the merge half of the
//! LSM-style lifecycle (`segments.rs` is the append half).
//!
//! Every append adds one segment, and every live segment adds its
//! superpost pointers to each query's fan-in, so an append-only index
//! slowly trades lookup latency for freshness. The [`Compactor`] restores
//! the balance: it merges the K smallest live segments (size-tiered
//! selection) into one segment rebuilt from source documents with the
//! ordinary [`Builder`], publishes the swap as a single new manifest
//! generation via compare-and-swap, and only then garbage-collects the
//! superseded blobs. The order gives crash atomicity:
//!
//! 1. the merged segment is built under a fresh unique prefix — a crash
//!    here leaves the manifest untouched and the new blobs orphaned;
//! 2. the manifest CAS atomically unlinks the merged segments and links
//!    the replacement — readers see either the old generation or the new
//!    one, never a mix, and a lost CAS (a concurrent append) is retried
//!    against the fresh manifest;
//! 3. deletion of superseded blobs happens strictly after the new
//!    manifest is durable — a crash between 2 and 3 leaks blobs (cleaned
//!    by the next orphan sweep) but never loses data.
//!
//! The orphan sweep also reclaims the debris of half-finished builds
//! (e.g. superposts persisted but no header — a builder that died
//! mid-persist). It assumes no append is in flight *at sweep time*
//! (an in-progress build is indistinguishable from a dead one); run it
//! from the same maintenance task that runs compaction.

use crate::builder::{BuildReport, Builder};
use crate::config::AirphantConfig;
use crate::segments::{manifest_blob, unique_segment_id, SegmentEntry, SegmentManager};
use crate::Result;
use airphant_corpus::{
    Corpus, DocFilter, DocSplitter, LineSplitter, Tokenizer, WhitespaceTokenizer,
};
use airphant_storage::ObjectStore;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Delete every blob under `{prefix}/`, returning how many went away.
/// Shared with layout-generation GC ([`crate::ShardRouter::gc_generation`]).
pub(crate) fn delete_prefix(store: &dyn ObjectStore, prefix: &str) -> Result<usize> {
    let names = store.list(&format!("{prefix}/"))?;
    let count = names.len();
    for name in names {
        store.delete(&name)?;
    }
    Ok(count)
}

/// When and how aggressively to compact.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Compact while the live-segment count exceeds this bound. `1`
    /// means "merge everything into a single segment".
    pub max_live_segments: usize,
    /// How many of the smallest live segments each round merges
    /// (clamped to at least 2 and at most the live count).
    pub merge_factor: usize,
    /// Whether [`Compactor::compact`] finishes with an orphan sweep.
    /// **Off by default**: the sweep cannot tell an in-flight append's
    /// not-yet-published blobs from a dead build's, so it must only be
    /// enabled when the caller knows no append is running (deleting a
    /// racing append's blobs would let it publish a segment whose header
    /// is gone, wedging every subsequent open of the index).
    pub sweep_orphans: bool,
    /// Defer all deletion: [`Compactor::compact`] publishes the new
    /// generation but removes **nothing**, recording the superseded
    /// prefixes in the report for a later [`Compactor::gc_deferred`].
    /// Use this when a live [`QueryServer`](crate::QueryServer) may
    /// still have in-flight queries on the old generation: publish →
    /// refresh → drain → GC.
    pub defer_gc: bool,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_live_segments: 8,
            merge_factor: 4,
            sweep_orphans: false,
            defer_gc: false,
        }
    }
}

impl CompactionPolicy {
    /// Default policy: keep at most 8 live segments, merging 4 at a
    /// time; no orphan sweep (opt in with
    /// [`CompactionPolicy::with_orphan_sweep`] when appends are
    /// quiesced).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the live-segment bound that triggers compaction.
    pub fn with_max_live_segments(mut self, max: usize) -> Self {
        assert!(max >= 1, "at least one live segment must remain");
        self.max_live_segments = max;
        self
    }

    /// Set how many segments each compaction round merges.
    pub fn with_merge_factor(mut self, k: usize) -> Self {
        self.merge_factor = k;
        self
    }

    /// Enable/disable the trailing orphan sweep. Only enable when no
    /// append can be in flight (see [`CompactionPolicy::sweep_orphans`]).
    pub fn with_orphan_sweep(mut self, sweep: bool) -> Self {
        self.sweep_orphans = sweep;
        self
    }

    /// Defer deletion to an explicit [`Compactor::gc_deferred`] call
    /// (for the publish → refresh → drain → GC sequence).
    pub fn with_deferred_gc(mut self, defer: bool) -> Self {
        self.defer_gc = defer;
        self
    }
}

/// What a [`Compactor::compact`] run did — the compaction counterpart of
/// [`BuildReport`].
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Merge rounds performed (0 when the index was already compact).
    pub rounds: usize,
    /// Ids of the segments that were merged away.
    pub merged_segment_ids: Vec<String>,
    /// Ids of the replacement segments that were created.
    pub new_segment_ids: Vec<String>,
    /// Build reports of the rebuilt (merged) segments.
    pub builds: Vec<BuildReport>,
    /// Live segments before and after.
    pub live_before: usize,
    /// Live segments once compaction finished.
    pub live_after: usize,
    /// Manifest generation after the last publish.
    pub generation: u64,
    /// Blobs of superseded segments deleted after their unlink was
    /// durable.
    pub superseded_blobs_deleted: usize,
    /// Unreferenced blobs reclaimed by the orphan sweep.
    pub orphan_blobs_deleted: usize,
    /// Superseded segment prefixes whose deletion was deferred
    /// ([`CompactionPolicy::defer_gc`]); hand this report to
    /// [`Compactor::gc_deferred`] once old-generation readers drained.
    pub deferred_prefixes: Vec<String>,
}

/// Merges small segments and reclaims dead blobs for one
/// [`SegmentManager`].
pub struct Compactor<'a> {
    manager: &'a SegmentManager,
    config: AirphantConfig,
    policy: CompactionPolicy,
    splitter: Arc<dyn DocSplitter>,
    tokenizer: Arc<dyn Tokenizer>,
    doc_filter: Option<DocFilter>,
}

impl<'a> Compactor<'a> {
    /// A compactor over `manager`, rebuilding merged segments with
    /// `config` (defaults: line-split documents, whitespace tokens,
    /// [`CompactionPolicy::default`]).
    pub fn new(manager: &'a SegmentManager, config: AirphantConfig) -> Self {
        Compactor {
            manager,
            config,
            policy: CompactionPolicy::default(),
            splitter: Arc::new(LineSplitter),
            tokenizer: Arc::new(WhitespaceTokenizer),
            doc_filter: None,
        }
    }

    /// Set the compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the document splitter used to re-parse merged corpora (must
    /// match what the segments were appended with).
    pub fn with_splitter(mut self, splitter: Arc<dyn DocSplitter>) -> Self {
        self.splitter = splitter;
        self
    }

    /// Set the tokenizer used to re-parse merged corpora (must match
    /// what the segments were appended with).
    pub fn with_tokenizer(mut self, tokenizer: Arc<dyn Tokenizer>) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Restrict merged rebuilds to documents passing `filter`. A shard
    /// of a hash-partitioned index MUST compact with its routing filter:
    /// segments record their source *blobs*, and the same blobs back
    /// every shard, so an unfiltered rebuild would pull the other
    /// shards' documents into this shard's merged segment.
    pub fn with_doc_filter(mut self, filter: DocFilter) -> Self {
        self.doc_filter = Some(filter);
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> &CompactionPolicy {
        &self.policy
    }

    /// Merge rounds until the live-segment count is within policy, then
    /// GC. Returns a report of everything that happened; a no-op run
    /// (already compact) still performs the orphan sweep when enabled.
    pub fn compact(&self) -> Result<CompactionReport> {
        let mut report = CompactionReport {
            live_before: self.manager.manifest()?.segments.len(),
            ..CompactionReport::default()
        };
        loop {
            let manifest = self.manager.manifest()?;
            if manifest.segments.len() <= self.policy.max_live_segments {
                report.live_after = manifest.segments.len();
                report.generation = manifest.generation;
                break;
            }

            // Size-tiered victim selection: the K smallest live segments
            // by persisted index bytes (ties keep append order).
            let base = self.manager.base();
            let store = self.manager.store();
            let mut sized: Vec<(u64, SegmentEntry)> = manifest
                .segments
                .iter()
                .map(|s| {
                    let bytes = store.usage(&format!("{}/", s.prefix(base)))?;
                    Ok((bytes, s.clone()))
                })
                .collect::<Result<_>>()?;
            sized.sort_by_key(|&(bytes, _)| bytes);
            // Merge the K smallest, but never more than needed to get
            // back within the live bound (merging live−max+1 segments
            // nets live−max fewer) — compaction converges on the policy
            // instead of overshooting it.
            let k = self
                .policy
                .merge_factor
                .min(manifest.segments.len() - self.policy.max_live_segments + 1)
                .clamp(2, manifest.segments.len());
            let victim_ids: BTreeSet<String> =
                sized.iter().take(k).map(|(_, s)| s.id.clone()).collect();

            // The merged segment re-indexes the victims' source blobs,
            // in manifest (append) order so hit ordering is preserved.
            // Duplicates (the same blob appended into two victim
            // segments, e.g. an ingest retry) are collapsed: postings
            // are sets over (blob, offset, len), so one segment cannot
            // hold the same document twice anyway — the merge
            // *canonicalizes* a double-counted document to one hit,
            // which is the set-semantic answer the searcher defines.
            let mut blobs: Vec<String> = Vec::new();
            for seg in manifest
                .segments
                .iter()
                .filter(|s| victim_ids.contains(&s.id))
            {
                for blob in &seg.corpus_blobs {
                    if !blobs.contains(blob) {
                        blobs.push(blob.clone());
                    }
                }
            }
            let corpus = Corpus::new(
                store.clone(),
                blobs.clone(),
                self.splitter.clone(),
                self.tokenizer.clone(),
            );
            let corpus = match &self.doc_filter {
                Some(filter) => corpus.with_doc_filter(filter.clone()),
                None => corpus,
            };
            let new_entry = SegmentEntry {
                id: unique_segment_id(),
                corpus_blobs: blobs,
            };
            let new_prefix = new_entry.prefix(base);
            let build = Builder::new(self.config.clone()).build(&corpus, &new_prefix)?;

            // Atomic swap: unlink the victims, link the replacement where
            // the oldest victim sat. Concurrent appends lose the CAS race
            // at most transiently — the publish loop re-reads and keeps
            // their segments. If another compactor already removed one of
            // our victims, this round aborts and its blobs become
            // orphans for the sweep below.
            let entry_for_publish = new_entry.clone();
            let published = self.manager.publish_with(move |m| {
                if !victim_ids
                    .iter()
                    .all(|id| m.segments.iter().any(|s| &s.id == id))
                {
                    return false;
                }
                let pos = m
                    .segments
                    .iter()
                    .position(|s| victim_ids.contains(&s.id))
                    .expect("victims present");
                m.segments.retain(|s| !victim_ids.contains(&s.id));
                m.segments.insert(pos, entry_for_publish.clone());
                true
            })?;

            match published {
                Some(manifest) => {
                    report.rounds += 1;
                    report.generation = manifest.generation;
                    report.live_after = manifest.segments.len();
                    report.builds.push(build);
                    report.new_segment_ids.push(new_entry.id.clone());
                    // GC strictly after the new manifest is durable —
                    // and, under `defer_gc`, strictly after the caller
                    // has also drained old-generation readers.
                    for id in sized.iter().take(k).map(|(_, s)| &s.id) {
                        if self.policy.defer_gc {
                            report.deferred_prefixes.push(format!("{base}/{id}"));
                        } else {
                            report.superseded_blobs_deleted +=
                                delete_prefix(store.as_ref(), &format!("{base}/{id}"))?;
                        }
                        report.merged_segment_ids.push(id.clone());
                    }
                }
                None => {
                    // Lost to a concurrent compactor: our rebuilt segment
                    // was never linked, so reclaim it immediately and
                    // re-plan against the fresh manifest.
                    delete_prefix(store.as_ref(), &new_prefix)?;
                }
            }
        }
        // Under deferred GC nothing may be deleted yet: the superseded
        // prefixes are orphans from the manifest's point of view, so the
        // sweep waits for `gc_deferred` too.
        if self.policy.sweep_orphans && !self.policy.defer_gc {
            report.orphan_blobs_deleted = self.sweep_orphans()?;
        }
        Ok(report)
    }

    /// Second half of a deferred-GC compaction: delete the superseded
    /// prefixes recorded in `report` (call once old-generation readers
    /// have drained — e.g. after a [`QueryServer::refresh`]
    /// (crate::QueryServer::refresh) plus in-flight-query completion),
    /// then run the orphan sweep if the policy asks for one. Returns the
    /// number of blobs reclaimed.
    pub fn gc_deferred(&self, report: &CompactionReport) -> Result<usize> {
        let store = self.manager.store();
        let mut deleted = 0;
        for prefix in &report.deferred_prefixes {
            deleted += delete_prefix(store.as_ref(), prefix)?;
        }
        if self.policy.sweep_orphans {
            deleted += self.sweep_orphans()?;
        }
        Ok(deleted)
    }

    /// Delete every blob under the index base that no live segment (and
    /// not the manifest) references: debris of crashed builds and of
    /// compactions that died between publish and GC.
    ///
    /// Must not run concurrently with an in-flight append — a build that
    /// has not yet published its manifest entry looks exactly like a
    /// dead one.
    pub fn sweep_orphans(&self) -> Result<usize> {
        let base = self.manager.base();
        let store = self.manager.store();
        let manifest = self.manager.manifest()?;
        let manifest_name = manifest_blob(base);
        let live: Vec<String> = manifest
            .segments
            .iter()
            .map(|s| format!("{}/", s.prefix(base)))
            .collect();
        let mut deleted = 0;
        for name in store.list(&format!("{base}/"))? {
            if name == manifest_name || live.iter().any(|p| name.starts_with(p.as_str())) {
                continue;
            }
            store.delete(&name)?;
            deleted += 1;
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::header_blob;
    use crate::error::AirphantError;
    use crate::segments::SegmentManager;
    use crate::Searcher;
    use airphant_storage::InMemoryStore;
    use bytes::Bytes;

    fn corpus_of(store: Arc<dyn ObjectStore>, blob: &str, lines: &[String]) -> Corpus {
        store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec![blob.to_owned()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    fn config() -> AirphantConfig {
        AirphantConfig::default()
            .with_total_bins(128)
            .with_common_fraction(0.0)
    }

    fn seeded_manager(store: &Arc<dyn ObjectStore>, days: usize) -> SegmentManager {
        let mgr = SegmentManager::new(store.clone(), "idx");
        for day in 0..days {
            let lines: Vec<String> = (0..6).map(|i| format!("common word{day}x{i}")).collect();
            let c = corpus_of(store.clone(), &format!("c/day{day}"), &lines);
            mgr.append(&c, &config()).unwrap();
        }
        mgr
    }

    #[test]
    fn compaction_merges_down_to_policy_and_keeps_every_document() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = seeded_manager(&store, 6);
        assert_eq!(mgr.manifest().unwrap().segments.len(), 6);
        let blobs_before = store.list("idx/").unwrap().len();

        let report = Compactor::new(&mgr, config())
            .with_policy(CompactionPolicy::new().with_max_live_segments(2))
            .compact()
            .unwrap();
        assert!(report.rounds >= 1);
        assert_eq!(report.live_before, 6);
        assert_eq!(report.live_after, 2);
        assert!(report.superseded_blobs_deleted > 0);
        assert!(!report.builds.is_empty());

        let manifest = mgr.manifest().unwrap();
        assert_eq!(manifest.segments.len(), 2);
        assert_eq!(manifest.generation, report.generation);
        // Every document from every original segment is still findable.
        let searcher = mgr.open().unwrap();
        for day in 0..6 {
            for i in 0..6 {
                assert_eq!(
                    searcher
                        .search(&format!("word{day}x{i}"), None)
                        .unwrap()
                        .hits
                        .len(),
                    1,
                    "word{day}x{i}"
                );
            }
        }
        assert_eq!(searcher.search("common", None).unwrap().hits.len(), 36);
        // The dead segments' blobs are actually gone.
        assert!(store.list("idx/").unwrap().len() < blobs_before);
    }

    #[test]
    fn compact_to_single_segment() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = seeded_manager(&store, 4);
        let report = Compactor::new(&mgr, config())
            .with_policy(
                CompactionPolicy::new()
                    .with_max_live_segments(1)
                    .with_merge_factor(16),
            )
            .compact()
            .unwrap();
        assert_eq!(report.live_after, 1);
        assert_eq!(report.rounds, 1, "merge factor covers all segments");
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.segment_count(), 1);
        assert_eq!(searcher.search("common", None).unwrap().hits.len(), 24);
    }

    #[test]
    fn merging_segments_that_share_a_blob_canonicalizes_duplicates() {
        // The same corpus blob appended into two segments (e.g. an
        // ingest retry) double-counts its documents — one hit per
        // segment. Postings are sets over (blob, offset, len), so a
        // single segment cannot hold a document twice: compaction
        // canonicalizes the duplicate down to one hit per physical
        // document, losing no document.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = SegmentManager::new(store.clone(), "idx");
        let lines = vec!["hello twice".to_owned(), "hello again".to_owned()];
        let corpus = corpus_of(store.clone(), "c/shared", &lines);
        mgr.append(&corpus, &config()).unwrap();
        mgr.append(&corpus, &config()).unwrap();
        let before = mgr.open().unwrap().search("hello", None).unwrap().hits;
        assert_eq!(before.len(), 4, "double-counted across two segments");

        Compactor::new(&mgr, config())
            .with_policy(
                CompactionPolicy::new()
                    .with_max_live_segments(1)
                    .with_merge_factor(4),
            )
            .compact()
            .unwrap();
        let after = mgr.open().unwrap().search("hello", None).unwrap().hits;
        // One hit per *physical document*; the set of documents matches.
        let docs = |hits: &[crate::SearchHit]| {
            let mut v: Vec<(String, u64)> =
                hits.iter().map(|h| (h.blob.clone(), h.offset)).collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(after.len(), 2);
        assert_eq!(docs(&after), docs(&before), "no document lost");
    }

    #[test]
    fn already_compact_is_a_noop() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = seeded_manager(&store, 2);
        let gen_before = mgr.generation().unwrap();
        let report = Compactor::new(&mgr, config()).compact().unwrap();
        assert_eq!(report.rounds, 0);
        assert_eq!(report.live_after, 2);
        assert_eq!(mgr.generation().unwrap(), gen_before, "no publish");
    }

    #[test]
    fn concurrent_append_during_compaction_survives() {
        // Compaction's CAS loses to an append landing between its read
        // and its publish; the retry must keep the appended segment.
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = seeded_manager(&store, 5);
        std::thread::scope(|s| {
            let store2 = store.clone();
            let appender = s.spawn(move || {
                let mgr2 = SegmentManager::new(store2.clone(), "idx");
                let lines = vec!["fresh appended".to_owned()];
                let c = corpus_of(store2, "c/fresh", &lines);
                mgr2.append(&c, &config()).unwrap();
            });
            let compactor = s.spawn(|| {
                Compactor::new(&mgr, config())
                    .with_policy(
                        CompactionPolicy::new()
                            .with_max_live_segments(2)
                            // No sweep: the racing append is in flight.
                            .with_orphan_sweep(false),
                    )
                    .compact()
                    .unwrap()
            });
            appender.join().unwrap();
            compactor.join().unwrap();
        });
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.search("fresh", None).unwrap().hits.len(), 1);
        assert_eq!(searcher.search("common", None).unwrap().hits.len(), 30);
        assert!(mgr.manifest().unwrap().segments.len() <= 3);
    }

    #[test]
    fn deferred_gc_keeps_old_generation_readable_until_collected() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = seeded_manager(&store, 4);
        // Snapshot the old generation BEFORE compacting.
        let old_reader = mgr.open().unwrap();
        let compactor = Compactor::new(&mgr, config()).with_policy(
            CompactionPolicy::new()
                .with_max_live_segments(1)
                .with_merge_factor(16)
                .with_deferred_gc(true),
        );
        let report = compactor.compact().unwrap();
        assert_eq!(report.superseded_blobs_deleted, 0, "nothing deleted yet");
        assert_eq!(report.deferred_prefixes.len(), 4);
        // The pre-compaction snapshot still serves: its blobs survive.
        assert_eq!(old_reader.search("common", None).unwrap().hits.len(), 24);
        // New readers see the compacted generation.
        let new_reader = mgr.open().unwrap();
        assert_eq!(new_reader.segment_count(), 1);
        assert_eq!(new_reader.search("common", None).unwrap().hits.len(), 24);
        // Drain, then collect: the old segments' blobs go away.
        let reclaimed = compactor.gc_deferred(&report).unwrap();
        assert!(reclaimed > 0);
        for prefix in &report.deferred_prefixes {
            assert!(store.list(&format!("{prefix}/")).unwrap().is_empty());
        }
        assert_eq!(new_reader.search("common", None).unwrap().hits.len(), 24);
    }

    #[test]
    fn orphan_sweep_reclaims_crashed_build_but_keeps_live_generation() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let mgr = seeded_manager(&store, 2);
        // Simulate a build that died between blocks and header: superpost
        // blobs under a seg- prefix with no header, never published.
        store
            .put(
                "idx/seg-deadbeefdeadbeef/superposts/00000",
                Bytes::from_static(b"orphan bytes"),
            )
            .unwrap();
        // A header-less prefix must keep reporting IndexNotFound.
        assert!(matches!(
            Searcher::open(store.clone(), "idx/seg-deadbeefdeadbeef"),
            Err(AirphantError::IndexNotFound { .. })
        ));
        let compactor = Compactor::new(&mgr, config());
        let swept = compactor.sweep_orphans().unwrap();
        assert_eq!(swept, 1, "exactly the orphan blob");
        assert!(!store.exists("idx/seg-deadbeefdeadbeef/superposts/00000"));
        assert!(store.exists(&header_blob(&mgr.segments().unwrap()[0])));
        // The live generation still serves.
        let searcher = mgr.open().unwrap();
        assert_eq!(searcher.search("common", None).unwrap().hits.len(), 12);
    }
}
