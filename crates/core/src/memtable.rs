//! Streaming ingestion: an in-memory memtable tail, a [`LiveIndex`] that
//! merges it with the durable segments, and a group-commit [`Flusher`].
//!
//! The paper defers frequent updates to future work (§III-A); the
//! segmented index (PR 3) made appends *possible* but each one is a full
//! [`Builder`] run to object storage — a freshly appended document is
//! invisible until its segment lands. This module adds the missing LSM
//! half:
//!
//! * [`Memtable`] — an in-memory tail batch. Appended documents are
//!   indexed with the **same** builder, config, and tokenizer as durable
//!   segments, into a mini-index staged in a
//!   [`TailStore`](airphant_storage::TailStore) overlay (never written to
//!   the durable store). Because the mini-index is a real segment in all
//!   but durability, the memtable serves queries through the *same*
//!   staged planner (`crate::plan`) as every other segment — including
//!   the async core's suspend/resume halves via [`StagedEngine`].
//! * [`LiveIndex`] — the read/write front. Reads see
//!   `[durable segments…, sealed batches…, active batch]`, exactly the
//!   segment order a post-flush manifest produces; writes go to the
//!   active batch and are searchable immediately. Results are
//!   **byte-for-byte equal** to a post-flush search *by construction*:
//!   the same planner walks the same per-segment sketches (the staged
//!   build is deterministic under the shared config seed) and document
//!   hits carry the same `(blob, offset, len)` because the corpus batch
//!   is staged under its final durable name up front.
//! * [`Flusher`] — a background thread that group-commits sealed batches
//!   into real segments through the existing
//!   [`SegmentManager`](crate::SegmentManager) CAS publish. A crash (or
//!   injected write fault) mid-flush leaves the old manifest generation
//!   intact and the memtable still serving — never a torn index; a
//!   retried flush converges.
//!
//! ## Flush protocol
//!
//! 1. Seal the active memtable (atomically swap in a fresh one); sealed
//!    batches keep serving reads.
//! 2. For the oldest sealed batch: `put` its corpus blob to the durable
//!    store under the name it was staged at, then build + CAS-publish a
//!    real segment over it ([`SegmentManager::append`]).
//! 3. Reopen the durable snapshot, retire the sealed batch, and drop its
//!    staged blobs — all under one write lock, so no query ever sees a
//!    gap or a doubled batch.
//!
//! If any step fails, the batch stays sealed (still serving), the
//! manifest is untouched (the CAS publish is the single commit point),
//! and re-running the flush retries from step 2. Half-built segment
//! blobs from a failed attempt are orphans for the compactor's GC sweep,
//! exactly like a crashed [`SegmentManager::append`].

use crate::config::AirphantConfig;
use crate::engine::{SearchEngine, StagedEngine};
use crate::error::AirphantError;
use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::searcher::Searcher;
use crate::segments::{SegmentManager, SegmentedSearcher};
use crate::Result;
use airphant_corpus::{Corpus, LineSplitter, Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, QueryTrace, TailStore};
use bytes::Bytes;
use iou_sketch::PostingsList;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the active memtable is sealed into a flush-ready batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Seal once the active batch holds this many documents.
    pub max_docs: usize,
    /// Seal once the active batch holds this many corpus bytes.
    pub max_bytes: u64,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            max_docs: 4096,
            max_bytes: 4 << 20,
        }
    }
}

/// What one [`LiveIndex::flush`] call committed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Sealed batches turned into durable segments.
    pub batches: usize,
    /// Documents made durable.
    pub docs: usize,
    /// Corpus bytes made durable (index bytes not included).
    pub corpus_bytes: u64,
    /// Manifest generation after the last publish.
    pub generation: u64,
}

/// State behind the memtable's lock: the raw documents plus the staged
/// mini-index covering a prefix of them.
struct MemtableState {
    docs: Vec<String>,
    bytes: u64,
    /// How many of `docs` the staged searcher covers.
    built_docs: usize,
    searcher: Option<Searcher>,
}

/// An in-memory tail batch: appended documents plus a lazily (re)built
/// staged mini-index over them.
///
/// The mini-index is produced by the same [`Builder`](crate::Builder)
/// (same config, same seed, same tokenizer) that durable segments use,
/// over the exact corpus bytes a flush will later make durable — staged
/// in the [`TailStore`] under the batch's final blob name. That identity
/// is what makes live results equal post-flush results byte for byte.
pub struct Memtable {
    tail: Arc<TailStore>,
    config: AirphantConfig,
    tokenizer: Arc<dyn Tokenizer>,
    /// The corpus blob's final durable name, staged up front.
    corpus_blob: String,
    /// The staged mini-index prefix (under the tail's staging prefix).
    index_prefix: String,
    state: RwLock<MemtableState>,
}

impl Memtable {
    fn new(
        tail: Arc<TailStore>,
        config: AirphantConfig,
        tokenizer: Arc<dyn Tokenizer>,
        base: &str,
        seq: u64,
    ) -> Self {
        Memtable {
            tail,
            config,
            tokenizer,
            corpus_blob: format!("{base}/ingest/batch-{seq:08}"),
            index_prefix: format!("{base}/.memtable/batch-{seq:08}"),
            state: RwLock::new(MemtableState {
                docs: Vec::new(),
                bytes: 0,
                built_docs: 0,
                searcher: None,
            }),
        }
    }

    /// Append one document (a log line). Rejected with
    /// [`AirphantError::InvalidDocument`] if empty or containing a raw
    /// newline — the line-oriented corpus codec could not round-trip it,
    /// which would break live/post-flush equality.
    pub fn append(&self, line: &str) -> Result<()> {
        if line.is_empty() {
            return Err(AirphantError::InvalidDocument {
                reason: "empty documents are skipped by the line splitter".to_owned(),
            });
        }
        if line.contains('\n') {
            return Err(AirphantError::InvalidDocument {
                reason: "raw newline would split the document at flush".to_owned(),
            });
        }
        let mut st = self.lock_write();
        st.bytes += line.len() as u64 + 1;
        st.docs.push(line.to_owned());
        Ok(())
    }

    /// Number of documents in this batch.
    pub fn len(&self) -> usize {
        self.lock_read().docs.len()
    }

    /// Whether the batch holds no documents.
    pub fn is_empty(&self) -> bool {
        self.lock_read().docs.is_empty()
    }

    /// Corpus bytes this batch will occupy once flushed.
    pub fn pending_bytes(&self) -> u64 {
        self.lock_read().bytes
    }

    /// The durable blob name this batch flushes to (already used by
    /// staged document hits).
    pub fn corpus_blob(&self) -> &str {
        &self.corpus_blob
    }

    /// The exact bytes a flush writes: documents joined by `\n`.
    fn corpus_bytes(&self) -> Bytes {
        Bytes::from(self.lock_read().docs.join("\n"))
    }

    fn lock_read(&self) -> RwLockReadGuard<'_, MemtableState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, MemtableState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// (Re)build the staged mini-index if documents arrived since the
    /// last build. A search of an N-doc batch therefore pays one
    /// in-memory build, and repeat searches are free until the next
    /// append — group-commit amortization on the read side.
    fn ensure_built(&self) -> Result<()> {
        {
            let st = self.lock_read();
            if st.built_docs == st.docs.len() {
                return Ok(());
            }
        }
        let mut st = self.lock_write();
        if st.built_docs == st.docs.len() {
            return Ok(());
        }
        // Stage the corpus under its final durable name, replace the
        // previous build, and open a searcher over the staged blobs.
        // Readers hold the state read lock while searching, so the
        // unstage/rebuild window is invisible to them.
        self.tail
            .stage(&self.corpus_blob, Bytes::from(st.docs.join("\n")));
        self.tail.unstage_prefix(&format!("{}/", self.index_prefix));
        let corpus = Corpus::new(
            self.tail.clone() as Arc<dyn ObjectStore>,
            vec![self.corpus_blob.clone()],
            Arc::new(LineSplitter),
            self.tokenizer.clone(),
        );
        crate::builder::Builder::new(self.config.clone()).build(&corpus, &self.index_prefix)?;
        let searcher = Searcher::open_with_tokenizer(
            self.tail.clone() as Arc<dyn ObjectStore>,
            &self.index_prefix,
            self.tokenizer.clone(),
        )?;
        st.built_docs = st.docs.len();
        st.searcher = Some(searcher);
        Ok(())
    }

    /// Run `f` over the staged searcher (`None` while the batch is
    /// empty), rebuilding first if the batch grew.
    fn with_searcher<T>(&self, f: impl FnOnce(Option<&Searcher>) -> T) -> Result<T> {
        self.ensure_built()?;
        let st = self.lock_read();
        Ok(f(st.searcher.as_ref()))
    }
}

impl SearchEngine for Memtable {
    fn name(&self) -> &'static str {
        "AIRPHANT-memtable"
    }

    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        self.with_searcher(|s| match s {
            Some(s) => crate::plan::lookup_over(&[s], &Query::term(word)),
            None => Ok((PostingsList::new(), QueryTrace::new())),
        })?
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        self.with_searcher(|s| match s {
            Some(s) => crate::plan::execute_over(&[s], query, opts),
            None => Ok(SearchResult {
                hits: Vec::new(),
                trace: QueryTrace::new(),
                candidates: 0,
                false_positives_removed: 0,
            }),
        })?
    }

    fn index_bytes(&self) -> u64 {
        self.tail
            .usage(&format!("{}/", self.index_prefix))
            .unwrap_or(0)
    }
}

impl StagedEngine for Memtable {
    fn with_segments(&self, f: &mut dyn FnMut(&[&Searcher])) {
        // An in-memory staged build cannot fail under a validated
        // config; if it somehow does, serve the empty set rather than
        // panicking the executor thread.
        if self.ensure_built().is_err() {
            f(&[]);
            return;
        }
        let st = self.lock_read();
        match st.searcher.as_ref() {
            Some(s) => f(&[s]),
            None => f(&[]),
        }
    }
}

/// Mutable state of the live index: the durable snapshot plus the
/// double-buffered memtables.
struct LiveState {
    durable: SegmentedSearcher,
    /// Sealed batches awaiting flush, oldest first. They keep serving
    /// reads until their segment is durable.
    sealed: VecDeque<Arc<Memtable>>,
    active: Arc<Memtable>,
    /// Sequence number for the next batch to create.
    next_batch: u64,
}

/// A segmented index with a live in-memory tail: appends are searchable
/// immediately, group-commit flushes make them durable, and results are
/// byte-for-byte what a post-flush search returns.
///
/// Implements [`SearchEngine`] and [`StagedEngine`], so both the sync
/// [`QueryServer`](crate::QueryServer) and the async
/// [`AsyncQueryServer`](crate::AsyncQueryServer) serve it directly.
pub struct LiveIndex {
    tail: Arc<TailStore>,
    mgr: SegmentManager,
    config: AirphantConfig,
    tokenizer: Arc<dyn Tokenizer>,
    base: String,
    policy: FlushPolicy,
    /// Serializes flushes: two concurrent flushes of one batch would
    /// publish the same documents as two segments.
    flush_lock: Mutex<()>,
    state: RwLock<LiveState>,
}

impl LiveIndex {
    /// Open (or create) a live index over `store` rooted at `base`, with
    /// the whitespace tokenizer.
    pub fn open(
        store: Arc<dyn ObjectStore>,
        base: impl Into<String>,
        config: AirphantConfig,
    ) -> Result<Self> {
        Self::open_with_tokenizer(store, base, config, Arc::new(WhitespaceTokenizer))
    }

    /// Open with a custom tokenizer (must match what durable segments
    /// under `base` were built with).
    pub fn open_with_tokenizer(
        store: Arc<dyn ObjectStore>,
        base: impl Into<String>,
        config: AirphantConfig,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<Self> {
        let base = base.into();
        config.validate()?;
        let tail = Arc::new(TailStore::new(store, format!("{base}/.memtable/")));
        let mgr = SegmentManager::new(tail.clone() as Arc<dyn ObjectStore>, base.clone());
        let durable = mgr.open_inner(tokenizer.clone(), true)?;
        // Resume batch numbering after any previously flushed batches so
        // a restarted writer never reuses a durable blob name.
        let next_batch = tail
            .inner()
            .list(&format!("{base}/ingest/batch-"))?
            .iter()
            .filter_map(|n| n.rsplit('-').next()?.parse::<u64>().ok())
            .max()
            .map_or(0, |m| m + 1);
        let active = Arc::new(Memtable::new(
            tail.clone(),
            config.clone(),
            tokenizer.clone(),
            &base,
            next_batch,
        ));
        Ok(LiveIndex {
            tail,
            mgr,
            config,
            tokenizer,
            base,
            policy: FlushPolicy::default(),
            flush_lock: Mutex::new(()),
            state: RwLock::new(LiveState {
                durable,
                sealed: VecDeque::new(),
                active,
                next_batch: next_batch + 1,
            }),
        })
    }

    /// Replace the seal policy (defaults to [`FlushPolicy::default`]).
    pub fn with_policy(mut self, policy: FlushPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn lock_read(&self) -> RwLockReadGuard<'_, LiveState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, LiveState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one document; it is searchable as soon as this returns.
    /// Seals the active batch into the flush queue when it crosses the
    /// [`FlushPolicy`] (sealing keeps it searchable — only a flush makes
    /// it durable).
    pub fn append(&self, line: &str) -> Result<()> {
        {
            let st = self.lock_read();
            st.active.append(line)?;
        }
        let should_seal = {
            let st = self.lock_read();
            st.active.len() >= self.policy.max_docs
                || st.active.pending_bytes() >= self.policy.max_bytes
        };
        if should_seal {
            self.seal();
        }
        Ok(())
    }

    /// Rotate the double buffer: move the active batch (if non-empty) to
    /// the sealed queue and install a fresh active batch. Sealed batches
    /// keep serving until their segment is durable.
    pub fn seal(&self) {
        let mut st = self.lock_write();
        if st.active.is_empty() {
            return;
        }
        let seq = st.next_batch;
        st.next_batch += 1;
        let fresh = Arc::new(Memtable::new(
            self.tail.clone(),
            self.config.clone(),
            self.tokenizer.clone(),
            &self.base,
            seq,
        ));
        let sealed = std::mem::replace(&mut st.active, fresh);
        st.sealed.push_back(sealed);
    }

    /// Group-commit every pending batch (sealing the active one first)
    /// into durable segments, oldest first. On error the failed batch —
    /// and everything after it — stays sealed and serving; the manifest
    /// is never torn (the CAS publish is the single commit point) and a
    /// retry converges.
    pub fn flush(&self) -> Result<FlushReport> {
        let _flushing = self.flush_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.seal();
        let mut report = FlushReport::default();
        loop {
            let next = self.lock_read().sealed.front().cloned();
            let Some(mem) = next else { break };
            let (docs, bytes) = self.flush_one(&mem)?;
            report.batches += 1;
            report.docs += docs;
            report.corpus_bytes += bytes;
        }
        report.generation = self.generation();
        Ok(report)
    }

    /// Make one sealed batch durable: corpus put → segment build → CAS
    /// publish → snapshot swap → drop staged blobs.
    fn flush_one(&self, mem: &Arc<Memtable>) -> Result<(usize, u64)> {
        // Re-stage first: an earlier search may have staged a corpus
        // covering only a prefix of the batch, and the tail-first read
        // below would serve that stale copy to the segment build.
        mem.ensure_built()?;
        let bytes = mem.corpus_bytes();
        let n_docs = mem.len();
        let n_bytes = bytes.len() as u64;
        // 1. The corpus batch becomes durable under the exact name its
        //    staged hits already carry. Retry-idempotent: same bytes,
        //    same name.
        self.tail.inner().put(&mem.corpus_blob, bytes)?;
        // 2. Build + CAS-publish a real segment over the durable blob.
        //    (Corpus reads resolve from the staged copy — identical
        //    bytes, no cloud round trips for the build's input.)
        let corpus = Corpus::new(
            self.tail.clone() as Arc<dyn ObjectStore>,
            vec![mem.corpus_blob.clone()],
            Arc::new(LineSplitter),
            self.tokenizer.clone(),
        );
        self.mgr.append(&corpus, &self.config)?;
        // 3. Swap in the new durable snapshot and retire the batch under
        //    one write lock: queries see the batch as a memtable or as a
        //    durable segment, never both, never neither.
        let durable = self.mgr.open_inner(self.tokenizer.clone(), true)?;
        {
            let mut st = self.lock_write();
            st.durable = durable;
            if st
                .sealed
                .front()
                .is_some_and(|front| Arc::ptr_eq(front, mem))
            {
                st.sealed.pop_front();
            }
        }
        // 4. The staged copies are dead weight now; durable reads take
        //    over at the same coordinates.
        self.tail.unstage(&mem.corpus_blob);
        self.tail.unstage_prefix(&format!("{}/", mem.index_prefix));
        Ok((n_docs, n_bytes))
    }

    /// Documents appended but not yet durable (active + sealed batches).
    pub fn pending_docs(&self) -> usize {
        let st = self.lock_read();
        st.active.len() + st.sealed.iter().map(|m| m.len()).sum::<usize>()
    }

    /// Sealed batches waiting for a flush.
    pub fn sealed_batches(&self) -> usize {
        self.lock_read().sealed.len()
    }

    /// The durable manifest generation this index last observed.
    pub fn generation(&self) -> u64 {
        self.lock_read().durable.generation()
    }

    /// Durable segments in the current snapshot.
    pub fn durable_segments(&self) -> usize {
        self.lock_read().durable.segment_count()
    }

    /// The segment manager over the same (overlaid) store, for
    /// compaction or inspection.
    pub fn segment_manager(&self) -> &SegmentManager {
        &self.mgr
    }

    /// Run `f` over the full live segment set: durable segments in
    /// manifest order, then sealed batches oldest-first, then the active
    /// batch — the exact order a post-flush manifest would produce.
    fn with_all_segments<T>(&self, f: impl FnOnce(&[&Searcher]) -> T) -> Result<T> {
        let st = self.lock_read();
        let mems: Vec<Arc<Memtable>> = st
            .sealed
            .iter()
            .cloned()
            .chain(std::iter::once(st.active.clone()))
            .collect();
        for m in &mems {
            m.ensure_built()?;
        }
        let guards: Vec<RwLockReadGuard<'_, MemtableState>> =
            mems.iter().map(|m| m.lock_read()).collect();
        let mut refs: Vec<&Searcher> = st.durable.segments().iter().collect();
        for g in &guards {
            if let Some(s) = g.searcher.as_ref() {
                refs.push(s);
            }
        }
        Ok(f(&refs))
    }
}

impl SearchEngine for LiveIndex {
    fn name(&self) -> &'static str {
        "AIRPHANT-live"
    }

    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        self.with_all_segments(|refs| crate::plan::lookup_over(refs, &Query::term(word)))?
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        self.with_all_segments(|refs| crate::plan::execute_over(refs, query, opts))?
    }

    fn index_bytes(&self) -> u64 {
        let durable: u64 = self
            .lock_read()
            .durable
            .segments()
            .iter()
            .map(|s| s.index_usage_bytes())
            .sum();
        durable + self.tail.staged_bytes()
    }
}

impl StagedEngine for LiveIndex {
    fn with_segments(&self, f: &mut dyn FnMut(&[&Searcher])) {
        // The callback MUST be invoked (the async core relies on it); if
        // a staged build errors, degrade to the durable snapshot.
        if self.with_all_segments(|refs| f(refs)).is_err() {
            let st = self.lock_read();
            let refs: Vec<&Searcher> = st.durable.segments().iter().collect();
            f(&refs);
        }
    }
}

// One LiveIndex behind an Arc serves N query threads while an appender
// writes and the flusher commits.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Memtable>();
    assert_send_sync::<LiveIndex>();
};

/// Counters of a [`Flusher`]'s background activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlusherStats {
    /// Successful flush rounds (only rounds that committed ≥ 1 batch).
    pub flushes: u64,
    /// Flush rounds that returned an error (batches stay sealed; the
    /// next tick retries).
    pub failures: u64,
    /// Documents made durable by this flusher.
    pub docs_flushed: u64,
}

struct FlusherShared {
    stop: AtomicBool,
    flushes: AtomicU64,
    failures: AtomicU64,
    docs_flushed: AtomicU64,
}

/// A background group-commit thread: every `interval`, flush whatever
/// the [`LiveIndex`] has pending. Errors are counted and retried on the
/// next tick (the memtable keeps serving either way). Dropping the
/// flusher stops the thread after one final flush attempt.
pub struct Flusher {
    shared: Arc<FlusherShared>,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Start flushing `live` every `interval` (wall clock).
    pub fn start(live: Arc<LiveIndex>, interval: Duration) -> Self {
        let shared = Arc::new(FlusherShared {
            stop: AtomicBool::new(false),
            flushes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            docs_flushed: AtomicU64::new(0),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::spawn(move || {
            loop {
                if thread_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                std::thread::park_timeout(interval);
                Self::flush_once(&live, &thread_shared);
            }
            // Final group commit so an orderly shutdown loses nothing.
            Self::flush_once(&live, &thread_shared);
        });
        Flusher {
            shared,
            handle: Some(handle),
        }
    }

    fn flush_once(live: &LiveIndex, shared: &FlusherShared) {
        if live.pending_docs() == 0 {
            return;
        }
        match live.flush() {
            Ok(report) if report.batches > 0 => {
                shared.flushes.fetch_add(1, Ordering::Relaxed);
                shared
                    .docs_flushed
                    .fetch_add(report.docs as u64, Ordering::Relaxed);
            }
            Ok(_) => {}
            Err(_) => {
                shared.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the flusher's counters.
    pub fn stats(&self) -> FlusherStats {
        FlusherStats {
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            failures: self.shared.failures.load(Ordering::Relaxed),
            docs_flushed: self.shared.docs_flushed.load(Ordering::Relaxed),
        }
    }

    /// Stop the thread after one final flush attempt and return the
    /// final counters.
    pub fn stop(mut self) -> FlusherStats {
        self.join();
        self.stats()
    }

    fn join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airphant_storage::InMemoryStore;

    fn config() -> AirphantConfig {
        AirphantConfig::default()
            .with_total_bins(64)
            .with_common_fraction(0.0)
    }

    fn live(store: Arc<dyn ObjectStore>) -> LiveIndex {
        LiveIndex::open(store, "idx", config()).unwrap()
    }

    fn texts(r: &SearchResult) -> Vec<&str> {
        r.hits.iter().map(|h| h.text.as_str()).collect()
    }

    #[test]
    fn appends_are_searchable_before_any_durability() {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let idx = live(inner.clone());
        idx.append("error disk unit0").unwrap();
        idx.append("info boot unit1").unwrap();
        // Nothing durable yet: no manifest, no segments, no corpus blobs.
        assert!(inner.list("idx/").unwrap().is_empty());
        assert_eq!(idx.generation(), 0);
        let r = idx
            .execute(&Query::term("error"), &QueryOptions::new())
            .unwrap();
        assert_eq!(texts(&r), vec!["error disk unit0"]);
        assert_eq!(idx.pending_docs(), 2);
    }

    #[test]
    fn invalid_documents_are_rejected() {
        let idx = live(Arc::new(InMemoryStore::new()));
        assert!(matches!(
            idx.append(""),
            Err(AirphantError::InvalidDocument { .. })
        ));
        assert!(matches!(
            idx.append("two\nlines"),
            Err(AirphantError::InvalidDocument { .. })
        ));
        assert_eq!(idx.pending_docs(), 0);
    }

    #[test]
    fn live_results_equal_post_flush_results_byte_for_byte() {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let idx = live(inner.clone());
        for i in 0..40 {
            idx.append(&format!("common word{i} line{i}")).unwrap();
        }
        let canonical = |r: &SearchResult| {
            r.hits
                .iter()
                .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
                .collect::<Vec<_>>()
        };
        let queries = [
            Query::term("common"),
            Query::term("word7"),
            Query::term("absent"),
            Query::all([Query::term("common"), Query::term("word3")]),
        ];
        let before: Vec<Vec<String>> = queries
            .iter()
            .map(|q| canonical(&idx.execute(q, &QueryOptions::new()).unwrap()))
            .collect();
        let report = idx.flush().unwrap();
        assert_eq!(report.docs, 40);
        assert_eq!(report.batches, 1);
        // Post-flush, through the live index AND through a cold
        // segmented open of the durable store alone.
        let reopened = SegmentManager::new(inner, "idx").open().unwrap();
        for (q, want) in queries.iter().zip(&before) {
            let live_after = canonical(&idx.execute(q, &QueryOptions::new()).unwrap());
            let durable = canonical(&reopened.execute(q, &QueryOptions::new()).unwrap());
            assert_eq!(&live_after, want, "live result changed across flush");
            assert_eq!(&durable, want, "durable result differs from live");
        }
    }

    #[test]
    fn seal_policy_rotates_and_flush_commits_in_order() {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let idx = live(inner.clone()).with_policy(FlushPolicy {
            max_docs: 3,
            max_bytes: u64::MAX,
        });
        for i in 0..7 {
            idx.append(&format!("doc{i} shared")).unwrap();
        }
        // 7 docs at 3/batch: two sealed batches + one active.
        assert_eq!(idx.sealed_batches(), 2);
        assert_eq!(idx.pending_docs(), 7);
        let r = idx
            .execute(&Query::term("shared"), &QueryOptions::new())
            .unwrap();
        assert_eq!(
            texts(&r),
            (0..7).map(|i| format!("doc{i} shared")).collect::<Vec<_>>()
        );
        let report = idx.flush().unwrap();
        assert_eq!(report.batches, 3);
        assert_eq!(report.docs, 7);
        assert_eq!(idx.pending_docs(), 0);
        assert_eq!(idx.durable_segments(), 3);
        // Order preserved across the flush.
        let r = idx
            .execute(&Query::term("shared"), &QueryOptions::new())
            .unwrap();
        assert_eq!(
            texts(&r),
            (0..7).map(|i| format!("doc{i} shared")).collect::<Vec<_>>()
        );
        // The staged overlay is fully drained.
        assert_eq!(idx.tail.staged_count(), 0);
    }

    #[test]
    fn reopen_resumes_batch_numbering() {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        {
            let idx = live(inner.clone());
            idx.append("first run doc").unwrap();
            idx.flush().unwrap();
        }
        let idx = live(inner.clone());
        idx.append("second run doc").unwrap();
        idx.flush().unwrap();
        let blobs = inner.list("idx/ingest/").unwrap();
        assert_eq!(
            blobs,
            vec!["idx/ingest/batch-00000000", "idx/ingest/batch-00000001"]
        );
        let r = idx
            .execute(&Query::term("doc"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 2);
    }

    #[test]
    fn flusher_thread_commits_in_background() {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let idx = Arc::new(live(inner));
        let flusher = Flusher::start(idx.clone(), Duration::from_millis(1));
        for i in 0..20 {
            idx.append(&format!("bg doc{i}")).unwrap();
        }
        // The final flush on stop() guarantees everything is durable.
        let stats = flusher.stop();
        assert_eq!(idx.pending_docs(), 0);
        assert!(stats.flushes >= 1);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.docs_flushed, 20);
        assert!(idx.generation() >= 1);
        let r = idx
            .execute(&Query::term("bg"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 20);
    }

    #[test]
    fn memtable_is_a_staged_engine() {
        let idx = live(Arc::new(InMemoryStore::new()));
        idx.append("staged alpha").unwrap();
        let mut n_segments = None;
        StagedEngine::with_segments(&idx, &mut |segs| n_segments = Some(segs.len()));
        assert_eq!(n_segments, Some(1));
        idx.flush().unwrap();
        idx.append("staged beta").unwrap();
        let mut n_segments = None;
        StagedEngine::with_segments(&idx, &mut |segs| n_segments = Some(segs.len()));
        // One durable segment + the active memtable.
        assert_eq!(n_segments, Some(2));
    }
}
