//! Search results and their instrumentation.

use airphant_storage::QueryTrace;

/// One matching document returned to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// Blob holding the document.
    pub blob: String,
    /// Byte offset inside the blob.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// The document's text.
    pub text: String,
}

/// The outcome of one query, with the latency trace the experiments report.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Matching documents (false positives already filtered out).
    pub hits: Vec<SearchHit>,
    /// Simulated-latency trace of the query (wait/download breakdown).
    pub trace: QueryTrace,
    /// Size of the final postings list before document filtering.
    pub candidates: usize,
    /// Documents fetched then discarded as false positives.
    pub false_positives_removed: usize,
}

impl SearchResult {
    /// End-to-end simulated latency of the query.
    pub fn latency(&self) -> airphant_storage::SimDuration {
        self.trace.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_delegates_to_trace() {
        let r = SearchResult {
            hits: Vec::new(),
            trace: QueryTrace::new(),
            candidates: 0,
            false_positives_removed: 0,
        };
        assert_eq!(r.latency(), airphant_storage::SimDuration::ZERO);
    }
}
