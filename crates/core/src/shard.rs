//! Horizontal sharding: hash-partitioned corpora across N independent
//! segmented indexes, served with scatter-gather query execution.
//!
//! A single (even segmented) index funnels every query through one
//! sketch and one postings-fetch path; the scale-out axis is
//! partitioning the *corpus itself*. A [`ShardRouter`] owns a sharded
//! layout under one base prefix:
//!
//! ```text
//! {base}/shards                  the layout blob: "airphant-shards v2"
//! {base}/shard-0000/manifest     generation 1: an ordinary segmented index
//! {base}/shard-0000/seg-…/…
//! {base}/gen0002/shard-0000/…    generation 2+ lives under its own prefix
//! ```
//!
//! **Layout generations.** The layout blob is an explicit, versioned
//! [`ShardLayout`]: shard count, layout generation, and (optionally) the
//! home regions of every shard. It is CAS-published exactly like a
//! segment manifest, so the *placement contract itself* can change at
//! runtime: [`ShardRouter::split`] and [`ShardRouter::merge`] build a
//! complete new shard set under the next generation's prefix, then
//! swing the layout blob in one conditional write. Readers holding the
//! old generation keep serving it (its blobs are untouched) until a
//! refresh; [`ShardRouter::gc_generation`] reclaims a superseded
//! generation once no searcher references it.
//!
//! **Routing.** Within a generation a document belongs to exactly one
//! shard: `shard_of(blob, offset) = fnv1a(blob ‖ offset) mod N`. The
//! rule is a pure function of the document's identity, so appends,
//! compactions, and queries all agree on placement without
//! coordination, and every shard can rebuild its slice of a shared
//! corpus blob through a [`DocFilter`] view
//! ([`Corpus::with_doc_filter`]) — the same filtered-rebuild path
//! resharding migrates documents through.
//!
//! **Scatter-gather.** [`ShardedSearcher`] implements
//! [`SearchEngine`]: a query fans out to all shards in parallel (each
//! shard runs the ordinary single-batch planner over its own segments),
//! then the per-shard results merge deterministically — hits in stable
//! doc-id order (`(blob, offset)`), counters summed, and the trace
//! combined with [`QueryTrace::merge_parallel`] so round trips report
//! the **max over shards** (the fan-out overlaps) rather than the sum.
//! Sharding therefore preserves the paper's constant-round-trip
//! property: an N-shard lookup is still one dependent postings round
//! trip followed by one document round trip.
//!
//! **Refresh.** A [`ShardedSearcher`] is an immutable snapshot of every
//! shard's manifest generation. After appends or compactions, reopen
//! the router and hand the fresh snapshot to
//! [`QueryServer::refresh`](crate::QueryServer::refresh): the whole
//! shard set swaps atomically behind one `Arc`, so no query ever sees
//! a mix of old and new shard generations.

use crate::builder::BuildReport;
use crate::compact::{CompactionPolicy, CompactionReport, Compactor};
use crate::config::AirphantConfig;
use crate::error::AirphantError;
use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::segments::{SegmentManager, SegmentedSearcher};
use crate::Result;
use airphant_corpus::{
    Corpus, CorpusProfile, DocFilter, DocSplitter, Tokenizer, WhitespaceTokenizer,
};
use airphant_storage::{ObjectStore, QueryTrace, StorageError, Version};
use bytes::Bytes;
use iou_sketch::PostingsList;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// First line of a v1 layout blob (shard count only, generation 1).
const LAYOUT_MAGIC_V1: &str = "airphant-shards v1";
/// First line of a v2 layout blob (generation + optional region homes).
const LAYOUT_MAGIC_V2: &str = "airphant-shards v2";

/// Blob name of the shard-layout record under `base`. Its existence is
/// what marks a prefix as a *sharded* index (the way a `manifest` blob
/// marks a segmented one).
pub(crate) fn layout_blob(base: &str) -> String {
    format!("{base}/shards")
}

/// The explicit placement contract of a sharded index: which generation
/// of the layout is live, how many shards it has, and (optionally)
/// which simulated regions each shard's replicas call home.
///
/// Serialized as the `{base}/shards` blob and republished by CAS, so
/// every layout change (resharding, rehoming) is one atomic swing that
/// concurrent writers cannot clobber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// Monotonically increasing layout generation. Generation 1 keeps
    /// its shard directories directly under `base` (the pre-generation
    /// layout); later generations are scoped under `{base}/gen{g:04}/`
    /// so a superseded generation keeps serving until GC.
    pub generation: u64,
    /// Number of hash partitions.
    pub shards: usize,
    /// Region names in nearness order (empty = single-home layout with
    /// no region awareness).
    pub regions: Vec<String>,
    /// Per-shard home replicas as indices into `regions`; an empty
    /// outer vec (or an empty inner vec) means "every region".
    pub homes: Vec<Vec<usize>>,
}

impl ShardLayout {
    /// A fresh single-home layout (generation 1, no regions).
    pub fn single_home(shards: usize) -> Self {
        ShardLayout {
            generation: 1,
            shards,
            regions: Vec::new(),
            homes: Vec::new(),
        }
    }

    /// The home-region names of one shard (empty = homed everywhere).
    pub fn replica_regions(&self, shard: usize) -> Vec<String> {
        match self.homes.get(shard) {
            Some(indices) if !indices.is_empty() => indices
                .iter()
                .filter_map(|&i| self.regions.get(i).cloned())
                .collect(),
            _ => self.regions.clone(),
        }
    }

    /// The prefix of one shard's segmented index under this layout.
    pub fn shard_prefix(&self, base: &str, shard: usize) -> String {
        if self.generation <= 1 {
            format!("{base}/shard-{shard:04}")
        } else {
            format!("{base}/gen{:04}/shard-{shard:04}", self.generation)
        }
    }

    /// The storage prefixes owned exclusively by this layout generation
    /// (what [`ShardRouter::gc_generation`] deletes).
    fn owned_prefixes(&self, base: &str) -> Vec<String> {
        if self.generation <= 1 {
            (0..self.shards)
                .map(|s| self.shard_prefix(base, s))
                .collect()
        } else {
            vec![format!("{base}/gen{:04}", self.generation)]
        }
    }

    /// Serialize as the layout blob payload (always v2; v1 blobs remain
    /// decodable for layouts written before generations existed).
    pub fn encode(&self) -> Bytes {
        let mut out = format!(
            "{LAYOUT_MAGIC_V2}\ngeneration {}\nshards {}\n",
            self.generation, self.shards
        );
        for region in &self.regions {
            out.push_str(&format!("region\t{region}\n"));
        }
        for (shard, home) in self.homes.iter().enumerate() {
            out.push_str(&format!("shard\t{shard}"));
            for &r in home {
                out.push_str(&format!("\t{r}"));
            }
            out.push('\n');
        }
        Bytes::from(out)
    }

    /// Decode a layout blob (either format version).
    pub fn decode(base: &str, bytes: &[u8]) -> Result<Self> {
        let corrupt = |reason: String| AirphantError::CorruptManifest {
            base: base.to_owned(),
            reason,
        };
        let text = std::str::from_utf8(bytes)
            .map_err(|e| corrupt(format!("shard layout is not valid UTF-8: {e}")))?;
        let mut lines = text.lines();
        let v2 = match lines.next() {
            Some(LAYOUT_MAGIC_V1) => false,
            Some(LAYOUT_MAGIC_V2) => true,
            other => {
                return Err(corrupt(format!(
                    "unrecognized shard layout header {other:?} \
                     (expected {LAYOUT_MAGIC_V1:?} or {LAYOUT_MAGIC_V2:?})"
                )));
            }
        };
        let generation = if v2 {
            match lines.next().and_then(|l| l.strip_prefix("generation ")) {
                Some(g) => g
                    .parse::<u64>()
                    .map_err(|_| corrupt(format!("unknown layout generation format {g:?}")))?,
                None => return Err(corrupt("missing layout generation record".to_owned())),
            }
        } else {
            1
        };
        if generation < 1 {
            return Err(corrupt("layout generation must be >= 1".to_owned()));
        }
        let shards = match lines.next().and_then(|l| l.strip_prefix("shards ")) {
            Some(n) => n
                .parse::<usize>()
                .map_err(|_| corrupt(format!("unknown shard count format {n:?}")))?,
            None => return Err(corrupt("missing shard count record".to_owned())),
        };
        if shards < 1 {
            return Err(corrupt("shard layout declares zero shards".to_owned()));
        }
        let mut regions = Vec::new();
        let mut homes: Vec<Vec<usize>> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            match fields.next() {
                Some("region") => match fields.next() {
                    Some(name) if !name.is_empty() => regions.push(name.to_owned()),
                    _ => return Err(corrupt("region record missing a name".to_owned())),
                },
                Some("shard") => {
                    let idx = fields
                        .next()
                        .and_then(|f| f.parse::<usize>().ok())
                        .ok_or_else(|| corrupt("shard record missing an index".to_owned()))?;
                    if idx != homes.len() || idx >= shards {
                        return Err(corrupt(format!(
                            "shard home records out of order at shard {idx}"
                        )));
                    }
                    let home = fields
                        .map(|f| f.parse::<usize>())
                        .collect::<std::result::Result<Vec<_>, _>>()
                        .map_err(|_| corrupt(format!("bad region index in shard {idx} home")))?;
                    if home.iter().any(|&r| r >= regions.len()) {
                        return Err(corrupt(format!(
                            "shard {idx} homed in an undeclared region"
                        )));
                    }
                    homes.push(home);
                }
                other => {
                    return Err(corrupt(format!("unrecognized layout record {other:?}")));
                }
            }
        }
        if !homes.is_empty() && homes.len() != shards {
            return Err(corrupt(format!(
                "layout declares {shards} shards but {} home records",
                homes.len()
            )));
        }
        Ok(ShardLayout {
            generation,
            shards,
            regions,
            homes,
        })
    }
}

/// Route a document identity to a shard: FNV-1a over the blob name and
/// byte offset, reduced mod `shards`. Deterministic and
/// coordination-free — builders, compactors, and queries all derive the
/// same placement from the document alone.
pub fn shard_of(blob: &str, offset: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1, "a layout has at least one shard");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in blob.as_bytes().iter().copied().chain(offset.to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Per-shard outcome of one [`ShardRouter::append`].
#[derive(Debug)]
pub struct ShardAppend {
    /// The shard index.
    pub shard: usize,
    /// Documents the routing rule sent to this shard.
    pub docs: u64,
    /// The build report of the shard's new segment (`None` when no
    /// documents routed here — the shard's manifest is left untouched).
    pub report: Option<BuildReport>,
    /// The new segment's prefix, when one was appended.
    pub segment_prefix: Option<String>,
}

/// Manages a sharded index layout: creates the per-shard segmented
/// indexes, routes appends, runs per-shard compaction, and opens
/// scatter-gather searchers.
pub struct ShardRouter {
    store: Arc<dyn ObjectStore>,
    base: String,
    layout: ShardLayout,
}

impl ShardRouter {
    /// Create (or re-open) a sharded layout of `shards` partitions under
    /// `base`. Publishing the layout blob is a CAS against absence, so
    /// two racing creators converge on one layout; creating over an
    /// existing layout with a *different* shard count is rejected
    /// (use [`ShardRouter::split`] / [`ShardRouter::merge`] to reshard
    /// online). Every shard's segment manifest is published up front,
    /// so an empty shard is distinguishable from a missing one.
    pub fn create(
        store: Arc<dyn ObjectStore>,
        base: impl Into<String>,
        shards: usize,
    ) -> Result<Self> {
        if shards < 1 {
            return Err(AirphantError::InvalidConfig {
                reason: "a sharded layout needs at least one shard".into(),
            });
        }
        let base = base.into();
        let name = layout_blob(&base);
        let mut layout = ShardLayout::single_home(shards);
        match store.put_if_version(&name, layout.encode(), Version::Absent) {
            Ok(_) => {}
            Err(StorageError::VersionMismatch { .. }) => {
                // Lost the creation race (or the layout predates us):
                // adopt the existing layout if it agrees on the count.
                let existing = Self::open(store.clone(), base.clone())?;
                if existing.shards() != shards {
                    return Err(AirphantError::InvalidConfig {
                        reason: format!(
                            "index {base} is already sharded {} ways (asked for {shards}); \
                             use split/merge to reshard online",
                            existing.shards()
                        ),
                    });
                }
                layout = existing.layout;
            }
            Err(e) => return Err(e.into()),
        }
        let router = ShardRouter {
            store,
            base,
            layout,
        };
        for shard in 0..router.shards() {
            router.manager(shard).ensure_manifest()?;
        }
        Ok(router)
    }

    /// Open an existing sharded layout rooted at `base`.
    pub fn open(store: Arc<dyn ObjectStore>, base: impl Into<String>) -> Result<Self> {
        let base = base.into();
        let (layout, _) = Self::fetch_layout(&store, &base)?;
        Ok(ShardRouter {
            store,
            base,
            layout,
        })
    }

    /// Read and decode the current layout blob plus its CAS token.
    fn fetch_layout(store: &Arc<dyn ObjectStore>, base: &str) -> Result<(ShardLayout, Version)> {
        let fetched = match store.get(&layout_blob(base)) {
            Ok(f) => f,
            Err(StorageError::BlobNotFound { .. }) => {
                return Err(AirphantError::IndexNotFound {
                    prefix: base.to_owned(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let layout = ShardLayout::decode(base, &fetched.bytes)?;
        Ok((layout, Version::of_bytes(&fetched.bytes)))
    }

    /// Whether a sharded layout exists under `base` (the auto-detection
    /// hook: a `shards` blob marks the prefix, the way `manifest` marks
    /// a segmented index).
    pub fn is_sharded(store: &Arc<dyn ObjectStore>, base: &str) -> bool {
        store.exists(&layout_blob(base))
    }

    /// The object store the shards live in.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// The base prefix of this sharded index.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Number of shards in the layout.
    pub fn shards(&self) -> usize {
        self.layout.shards
    }

    /// The layout generation this router serves.
    pub fn generation(&self) -> u64 {
        self.layout.generation
    }

    /// The full placement contract.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The shard a document routes to under this layout.
    pub fn route(&self, blob: &str, offset: u64) -> usize {
        shard_of(blob, offset, self.shards())
    }

    /// The prefix of shard `shard`'s segmented index.
    pub fn shard_prefix(&self, shard: usize) -> String {
        self.layout.shard_prefix(&self.base, shard)
    }

    /// The [`SegmentManager`] of one shard.
    pub fn manager(&self, shard: usize) -> SegmentManager {
        SegmentManager::new(self.store.clone(), self.shard_prefix(shard))
    }

    /// The routing predicate for one shard — the [`DocFilter`] that
    /// restricts a shared corpus to the documents this shard indexes.
    pub fn doc_filter(&self, shard: usize) -> DocFilter {
        let shards = self.shards();
        Arc::new(move |doc| shard_of(&doc.blob, doc.offset, shards) == shard)
    }

    /// Index `corpus` across the shards: each document goes to exactly
    /// one shard by the routing rule, and each shard that receives any
    /// documents gains one new immutable segment (published atomically
    /// in that shard's manifest). Returns one [`ShardAppend`] per shard.
    ///
    /// All N shard profiles are computed in **one** pass over the
    /// corpus (routing + tokenizing each document into its shard's
    /// accumulator); each non-empty shard then pays one build pass over
    /// its filtered view. An N-shard append therefore reads the corpus
    /// `1 + populated_shards` times, not `1 + 2N`.
    pub fn append(&self, corpus: &Corpus, config: &AirphantConfig) -> Result<Vec<ShardAppend>> {
        #[derive(Default)]
        struct ProfileAcc {
            n_docs: u64,
            n_words: u64,
            total_bytes: u64,
            doc_distinct_sizes: Vec<u64>,
            doc_freqs: HashMap<String, u64>,
        }
        let tokenizer = corpus.tokenizer().clone();
        let shards = self.shards();
        let mut accs: Vec<ProfileAcc> = (0..shards).map(|_| ProfileAcc::default()).collect();
        corpus.for_each_document(|doc| {
            let acc = &mut accs[shard_of(&doc.blob, doc.offset, shards)];
            acc.n_docs += 1;
            acc.total_bytes += doc.len as u64;
            let tokens = tokenizer.tokens(&doc.text);
            acc.n_words += tokens.len() as u64;
            let distinct: BTreeSet<String> = tokens.into_iter().collect();
            acc.doc_distinct_sizes.push(distinct.len() as u64);
            for w in distinct {
                *acc.doc_freqs.entry(w).or_insert(0) += 1;
            }
        })?;
        let mut out = Vec::with_capacity(shards);
        for (shard, acc) in accs.into_iter().enumerate() {
            let docs = acc.n_docs;
            if docs == 0 {
                out.push(ShardAppend {
                    shard,
                    docs,
                    report: None,
                    segment_prefix: None,
                });
                continue;
            }
            let profile = CorpusProfile {
                n_docs: acc.n_docs,
                n_terms: acc.doc_freqs.len() as u64,
                n_words: acc.n_words,
                total_bytes: acc.total_bytes,
                doc_distinct_sizes: acc.doc_distinct_sizes,
                doc_freqs: acc.doc_freqs,
            };
            let view = corpus.with_doc_filter(self.doc_filter(shard));
            let (report, prefix) = self
                .manager(shard)
                .append_with_profile(&view, config, profile)?;
            out.push(ShardAppend {
                shard,
                docs,
                report: Some(report),
                segment_prefix: Some(prefix),
            });
        }
        Ok(out)
    }

    /// Compact every shard under `policy` (whitespace tokenizer).
    pub fn compact(
        &self,
        config: &AirphantConfig,
        policy: &CompactionPolicy,
    ) -> Result<Vec<CompactionReport>> {
        self.compact_with_tokenizer(config, policy, Arc::new(WhitespaceTokenizer))
    }

    /// Compact every shard: each shard runs an ordinary [`Compactor`]
    /// over its own manifest, with the shard's routing filter installed
    /// so merged rebuilds re-index only this shard's slice of the
    /// (shared) corpus blobs.
    pub fn compact_with_tokenizer(
        &self,
        config: &AirphantConfig,
        policy: &CompactionPolicy,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<Vec<CompactionReport>> {
        let mut reports = Vec::with_capacity(self.shards());
        for shard in 0..self.shards() {
            let manager = self.manager(shard);
            let report = Compactor::new(&manager, config.clone())
                .with_tokenizer(tokenizer.clone())
                .with_doc_filter(self.doc_filter(shard))
                .with_policy(policy.clone())
                .compact()?;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Each shard's current manifest generation.
    pub fn generations(&self) -> Result<Vec<u64>> {
        (0..self.shards())
            .map(|shard| self.manager(shard).generation())
            .collect()
    }

    /// Every shard's index prefix, in shard order, verifying each
    /// shard's segment manifest exists — a hole in the layout fails
    /// with the shard-naming [`AirphantError::ShardNotFound`]. This is
    /// the validation `segments`/`compact`-style tooling should run
    /// before walking the shards.
    pub fn shard_bases(&self) -> Result<Vec<String>> {
        (0..self.shards())
            .map(|shard| {
                if !self.manager(shard).manifest_exists() {
                    return Err(AirphantError::ShardNotFound {
                        base: self.base.clone(),
                        shard,
                        shards: self.shards(),
                        generation: self.layout.generation,
                        replicas: self.layout.replica_regions(shard),
                    });
                }
                Ok(self.shard_prefix(shard))
            })
            .collect()
    }

    /// Open a scatter-gather searcher over every shard's live segment
    /// set (whitespace tokenizer).
    pub fn open_searcher(&self) -> Result<ShardedSearcher> {
        self.open_searcher_with_tokenizer(Arc::new(WhitespaceTokenizer))
    }

    /// Open with a custom document-word parser (must match what the
    /// shards were built with). A shard whose manifest blob is missing
    /// is a hole in the layout and fails with the shard-naming
    /// [`AirphantError::ShardNotFound`]; a shard with zero live
    /// segments is merely empty and serves no hits.
    pub fn open_searcher_with_tokenizer(
        &self,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<ShardedSearcher> {
        self.shard_bases()?;
        let shards = (0..self.shards())
            .map(|shard| self.manager(shard).open_inner(tokenizer.clone(), true))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedSearcher {
            shards,
            layout_generation: self.layout.generation,
        })
    }

    /// Split every shard in two: build a complete new shard set of
    /// `2 * shards()` partitions under the next layout generation by
    /// re-routing every document through the per-shard [`DocFilter`]
    /// rebuild path, then CAS-publish the new layout. The old
    /// generation's blobs are untouched — searchers already open keep
    /// serving it until a refresh — and a concurrent reshard loses the
    /// CAS and surfaces as [`StorageError::VersionMismatch`].
    ///
    /// Returns `(router over the new layout, the superseded layout)`;
    /// pass the latter to [`ShardRouter::gc_generation`] once every
    /// reader has refreshed.
    pub fn split(
        &self,
        config: &AirphantConfig,
        splitter: Arc<dyn DocSplitter>,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<(ShardRouter, ShardLayout)> {
        let target = self
            .shards()
            .checked_mul(2)
            .ok_or_else(|| AirphantError::InvalidConfig {
                reason: "shard count overflow on split".into(),
            })?;
        self.reshard(target, config, splitter, tokenizer)
    }

    /// Merge shards pairwise: `shards() / 2` partitions under the next
    /// layout generation. Errors when the current count is odd or 1.
    /// See [`ShardRouter::split`] for the migration/cutover contract.
    pub fn merge(
        &self,
        config: &AirphantConfig,
        splitter: Arc<dyn DocSplitter>,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<(ShardRouter, ShardLayout)> {
        let n = self.shards();
        if n < 2 || !n.is_multiple_of(2) {
            return Err(AirphantError::InvalidConfig {
                reason: format!("cannot merge {n} shards pairwise (need an even count >= 2)"),
            });
        }
        self.reshard(n / 2, config, splitter, tokenizer)
    }

    /// The shared split/merge engine: rebuild into `target` shards under
    /// generation `g+1`, then swing the layout blob by CAS.
    fn reshard(
        &self,
        target: usize,
        config: &AirphantConfig,
        splitter: Arc<dyn DocSplitter>,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<(ShardRouter, ShardLayout)> {
        // Anchor the CAS on the layout as it exists *now*; if another
        // resharder published meanwhile, the final swing below loses.
        let (current, expected) = Self::fetch_layout(&self.store, &self.base)?;
        if current.generation != self.layout.generation {
            return Err(AirphantError::InvalidConfig {
                reason: format!(
                    "layout of {} moved to generation {} (router holds {}); reopen and retry",
                    self.base, current.generation, self.layout.generation
                ),
            });
        }
        // Union of every shard's corpus blobs, deduplicated in shard +
        // append order: the complete document set of this generation.
        let mut blobs = Vec::new();
        let mut seen = BTreeSet::new();
        for shard in 0..self.shards() {
            let manifest = self.manager(shard).manifest()?;
            for segment in &manifest.segments {
                for blob in &segment.corpus_blobs {
                    if seen.insert(blob.clone()) {
                        blobs.push(blob.clone());
                    }
                }
            }
        }
        let next = ShardLayout {
            generation: current.generation + 1,
            shards: target,
            regions: current.regions.clone(),
            homes: if current.regions.is_empty() {
                Vec::new()
            } else {
                // Round-robin re-homing: hash routing reshuffles the
                // documents anyway, so homes cannot be inherited —
                // spread them deterministically instead.
                (0..target)
                    .map(|s| vec![s % current.regions.len()])
                    .collect()
            },
        };
        // A staged router over the unpublished layout: its shard
        // prefixes live under the new generation's directory, so the
        // migration is invisible to readers until the CAS below.
        let staged = ShardRouter {
            store: self.store.clone(),
            base: self.base.clone(),
            layout: next.clone(),
        };
        for shard in 0..target {
            staged.manager(shard).ensure_manifest()?;
        }
        if !blobs.is_empty() {
            let corpus = Corpus::new(self.store.clone(), blobs, splitter, tokenizer);
            staged.append(&corpus, config)?;
        }
        // Data durable → swing the contract. One conditional write is
        // the entire cutover.
        self.store
            .put_if_version(&layout_blob(&self.base), next.encode(), expected)?;
        Ok((staged, current))
    }

    /// Delete a superseded layout generation's shard directories. Only
    /// valid for a generation other than the one this router serves
    /// (the caller sequences publish → refresh → drain → GC, exactly
    /// like deferred segment GC).
    pub fn gc_generation(&self, old: &ShardLayout) -> Result<usize> {
        if old.generation == self.layout.generation {
            return Err(AirphantError::InvalidConfig {
                reason: format!(
                    "refusing to GC generation {} of {}: it is the live layout",
                    old.generation, self.base
                ),
            });
        }
        let mut deleted = 0;
        for prefix in old.owned_prefixes(&self.base) {
            deleted += crate::compact::delete_prefix(self.store.as_ref(), &prefix)?;
        }
        Ok(deleted)
    }
}

/// A scatter-gather query server over N shard snapshots — a consistent
/// view of every shard's manifest generation at open time.
pub struct ShardedSearcher {
    shards: Vec<SegmentedSearcher>,
    layout_generation: u64,
}

impl ShardedSearcher {
    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The layout generation this snapshot was opened under. In-flight
    /// queries keep executing against it even after a reshard publishes
    /// a newer generation — the cutover happens at refresh.
    pub fn layout_generation(&self) -> u64 {
        self.layout_generation
    }

    /// Per-shard segmented snapshots (for introspection).
    pub fn shards(&self) -> &[SegmentedSearcher] {
        &self.shards
    }

    /// The manifest generation each shard was opened at.
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.generation()).collect()
    }

    /// Scatter `op` across the shards in parallel and gather the
    /// per-shard outcomes in shard order. Shard-thread panics resume on
    /// the caller (where the serving layer's catch_unwind contains
    /// them).
    fn scatter<T: Send>(
        &self,
        op: impl Fn(&SegmentedSearcher) -> Result<T> + Sync,
    ) -> Vec<Result<T>> {
        if self.shards.len() <= 1 {
            return self.shards.iter().map(&op).collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(|| op(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }

    /// Execute a [`Query`] across every shard in parallel and merge:
    /// hits in stable doc-id order (`(blob, offset)` — routing makes
    /// shards disjoint, so no dedup is needed), candidate/false-positive
    /// counters summed, and the trace merged with
    /// [`QueryTrace::merge_parallel`] so the reported round trips are
    /// the max over shards (the fan-out overlaps), not the sum.
    pub fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        let gathered = self.scatter(|shard| shard.execute(query, opts));
        let mut hits = Vec::new();
        let mut traces = Vec::with_capacity(gathered.len());
        let mut candidates = 0usize;
        let mut dropped = 0usize;
        for outcome in gathered {
            let result = outcome?;
            hits.extend(result.hits);
            traces.push(result.trace);
            candidates += result.candidates;
            dropped += result.false_positives_removed;
        }
        hits.sort_by(|a, b| {
            a.blob
                .cmp(&b.blob)
                .then(a.offset.cmp(&b.offset))
                .then(a.len.cmp(&b.len))
        });
        if let Some(k) = opts.top_k {
            hits.truncate(k);
        }
        Ok(SearchResult {
            hits,
            trace: if opts.capture_trace {
                QueryTrace::merge_parallel(&traces)
            } else {
                QueryTrace::new()
            },
            candidates,
            false_positives_removed: dropped,
        })
    }

    /// Index-lookup phase only: every shard's candidate postings,
    /// unioned, with the merged (max-over-shards) lookup trace.
    pub fn execute_lookup(&self, query: &Query) -> Result<(PostingsList, QueryTrace)> {
        let gathered = self.scatter(|shard| shard.execute_lookup(query));
        let mut postings = PostingsList::new();
        let mut traces = Vec::with_capacity(gathered.len());
        for outcome in gathered {
            let (list, trace) = outcome?;
            postings.union_with(&list);
            traces.push(trace);
        }
        Ok((postings, QueryTrace::merge_parallel(&traces)))
    }

    /// Single-keyword search across all shards; thin shim over
    /// [`ShardedSearcher::execute`].
    pub fn search(&self, word: &str, top_k: Option<usize>) -> Result<SearchResult> {
        self.execute(&Query::term(word), &QueryOptions::new().with_top_k(top_k))
    }
}

impl crate::SearchEngine for ShardedSearcher {
    fn name(&self) -> &'static str {
        "AIRPHANT-sharded"
    }

    fn init_trace(&self) -> QueryTrace {
        // Shards initialize concurrently, each fanning out its own
        // segment-header downloads.
        QueryTrace::merge_parallel(
            &self
                .shards
                .iter()
                .map(crate::SearchEngine::init_trace)
                .collect::<Vec<_>>(),
        )
    }

    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        self.execute_lookup(&Query::term(word))
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        ShardedSearcher::execute(self, query, opts)
    }

    fn index_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(crate::SearchEngine::index_bytes)
            .sum()
    }
}

// One sharded snapshot behind one `Arc` serves every worker of a
// `QueryServer`, same as the single-index engines.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardRouter>();
    assert_send_sync::<ShardedSearcher>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{QueryServer, ServerConfig};
    use crate::SearchEngine;
    use airphant_corpus::LineSplitter;
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use std::collections::BTreeSet;

    fn corpus_of(store: Arc<dyn ObjectStore>, blob: &str, lines: &[String]) -> Corpus {
        store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec![blob.to_owned()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    fn config() -> AirphantConfig {
        AirphantConfig::default()
            .with_total_bins(128)
            .with_common_fraction(0.0)
            .with_seed(3)
    }

    fn lines(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shared {prefix}doc{i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_shard() {
        for shards in [1usize, 2, 4, 8] {
            let mut seen = vec![0usize; shards];
            for i in 0..1_000u64 {
                let s = shard_of("corpus/blob", i * 17, shards);
                assert_eq!(s, shard_of("corpus/blob", i * 17, shards));
                seen[s] += 1;
            }
            assert!(
                seen.iter().all(|&c| c > 0),
                "{shards} shards must all receive documents, got {seen:?}"
            );
        }
    }

    #[test]
    fn create_open_roundtrip_and_mismatch_rejected() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        assert_eq!(router.shards(), 4);
        assert!(ShardRouter::is_sharded(&store, "idx"));
        assert!(!ShardRouter::is_sharded(&store, "other"));
        // Every shard's manifest exists up front.
        for shard in 0..4 {
            assert!(router.manager(shard).manifest_exists());
        }
        // Re-creating with the same count adopts the layout.
        assert_eq!(
            ShardRouter::create(store.clone(), "idx", 4)
                .unwrap()
                .shards(),
            4
        );
        // A different count is a rebuild, not a config flip.
        assert!(matches!(
            ShardRouter::create(store.clone(), "idx", 8),
            Err(AirphantError::InvalidConfig { .. })
        ));
        let reopened = ShardRouter::open(store.clone(), "idx").unwrap();
        assert_eq!(reopened.shards(), 4);
        assert!(matches!(
            ShardRouter::open(store, "missing"),
            Err(AirphantError::IndexNotFound { .. })
        ));
    }

    #[test]
    fn corrupt_layout_is_a_typed_error() {
        let cases: Vec<&[u8]> = vec![
            b"\xff\xfe garbage".as_slice(),
            b"not-a-layout\nshards 4".as_slice(),
            b"airphant-shards v1\n".as_slice(),
            b"airphant-shards v1\nshards four".as_slice(),
            b"airphant-shards v1\nshards 0".as_slice(),
        ];
        for bytes in cases {
            let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
            store
                .put("idx/shards", Bytes::from(bytes.to_vec()))
                .unwrap();
            assert!(matches!(
                ShardRouter::open(store, "idx"),
                Err(AirphantError::CorruptManifest { .. })
            ));
        }
    }

    #[test]
    fn append_routes_every_document_to_exactly_one_shard() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        let docs = lines("a", 40);
        let corpus = corpus_of(store.clone(), "c/a", &docs);
        let appends = router.append(&corpus, &config()).unwrap();
        assert_eq!(appends.len(), 4);
        assert_eq!(appends.iter().map(|a| a.docs).sum::<u64>(), 40);
        let searcher = router.open_searcher().unwrap();
        // Every document findable exactly once through the fan-out …
        for i in 0..40 {
            let hits = searcher.search(&format!("adoc{i}"), None).unwrap().hits;
            assert_eq!(hits.len(), 1, "adoc{i}");
        }
        assert_eq!(searcher.search("shared", None).unwrap().hits.len(), 40);
        // … and the shards partition the corpus (disjoint, exhaustive).
        let per_shard: Vec<usize> = searcher
            .shards()
            .iter()
            .map(|s| s.search("shared", None).unwrap().hits.len())
            .collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 40);
        assert_eq!(
            per_shard,
            appends.iter().map(|a| a.docs as usize).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sharded_results_match_unsharded_in_doc_id_order() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs: Vec<String> = (0..60)
            .map(|i| format!("common w{} tag{}", i % 7, i % 3))
            .collect();
        let corpus = corpus_of(store.clone(), "c/a", &docs);
        // Unsharded reference: one segmented index over the same corpus.
        let unsharded = SegmentManager::new(store.clone(), "flat");
        unsharded.append(&corpus, &config()).unwrap();
        let flat = unsharded.open().unwrap();
        let canonical = |mut hits: Vec<crate::SearchHit>| {
            hits.sort_by(|a, b| (&a.blob, a.offset, a.len).cmp(&(&b.blob, b.offset, b.len)));
            hits.into_iter()
                .map(|h| (h.blob, h.offset, h.len, h.text))
                .collect::<Vec<_>>()
        };
        for shards in [1usize, 2, 4, 8] {
            let router =
                ShardRouter::create(store.clone(), format!("idx{shards}"), shards).unwrap();
            router.append(&corpus, &config()).unwrap();
            let sharded = router.open_searcher().unwrap();
            for query in [
                Query::term("common"),
                Query::all([Query::term("w3"), Query::term("tag0")]),
                Query::any([Query::term("w1"), Query::term("w5")]),
                Query::term("absent"),
            ] {
                let s = sharded.execute(&query, &QueryOptions::new()).unwrap();
                let f = flat.execute(&query, &QueryOptions::new()).unwrap();
                // The sharded merge arrives already in doc-id order.
                let as_tuples: Vec<_> = s
                    .hits
                    .iter()
                    .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
                    .collect();
                assert_eq!(canonical(s.hits.clone()), as_tuples);
                assert_eq!(
                    canonical(s.hits),
                    canonical(f.hits),
                    "{shards} shards, {query:?}"
                );
            }
        }
    }

    #[test]
    fn top_k_truncates_deterministically_in_doc_id_order() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs = lines("t", 30);
        let corpus = corpus_of(store.clone(), "c/a", &docs);
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        router.append(&corpus, &config()).unwrap();
        let searcher = router.open_searcher().unwrap();
        let a = searcher.search("shared", Some(7)).unwrap();
        let b = searcher.search("shared", Some(7)).unwrap();
        assert_eq!(a.hits.len(), 7);
        let ids = |r: &SearchResult| {
            r.hits
                .iter()
                .map(|h| (h.blob.clone(), h.offset))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b), "merge order is stable across runs");
        let mut sorted = ids(&a);
        sorted.sort();
        assert_eq!(ids(&a), sorted, "hits arrive in doc-id order");
    }

    #[test]
    fn empty_shards_serve_and_missing_manifest_names_the_shard() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 8).unwrap();
        // One document: 7 of 8 shards stay empty but still open + serve.
        let corpus = corpus_of(store.clone(), "c/one", &["solo entry".to_owned()]);
        router.append(&corpus, &config()).unwrap();
        let searcher = router.open_searcher().unwrap();
        assert_eq!(searcher.shard_count(), 8);
        assert_eq!(searcher.search("solo", None).unwrap().hits.len(), 1);
        assert!(searcher.search("absent", None).unwrap().hits.is_empty());

        // Punch a hole: delete shard 5's manifest. The open must name
        // the missing shard, not report a generic IndexNotFound.
        store
            .delete(&format!("{}/manifest", router.shard_prefix(5)))
            .unwrap();
        match router.open_searcher() {
            Err(AirphantError::ShardNotFound {
                base,
                shard,
                shards,
                generation,
                replicas,
            }) => {
                assert_eq!(base, "idx");
                assert_eq!(shard, 5);
                assert_eq!(shards, 8);
                assert_eq!(generation, 1);
                assert!(replicas.is_empty(), "single-home layout");
            }
            Err(other) => panic!("expected ShardNotFound, got {other:?}"),
            Ok(_) => panic!("expected ShardNotFound, got a searcher"),
        }
    }

    #[test]
    fn scatter_gather_trace_reports_max_over_shards_round_trips() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            13,
        ));
        let dyn_store: Arc<dyn ObjectStore> = store.clone();
        let router = ShardRouter::create(dyn_store.clone(), "idx", 4).unwrap();
        let docs = lines("r", 48);
        let corpus = corpus_of(dyn_store.clone(), "c/a", &docs);
        router.append(&corpus, &config()).unwrap();
        let searcher = router.open_searcher().unwrap();

        let (_, lookup_trace) = searcher.execute_lookup(&Query::term("shared")).unwrap();
        assert_eq!(
            lookup_trace.round_trips(),
            1,
            "4-shard fan-out is still one dependent lookup round trip"
        );
        let r = searcher
            .execute(&Query::term("shared"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 48);
        assert_eq!(
            r.trace.round_trips(),
            2,
            "lookup + documents, max over shards (not 2 x 4)"
        );
    }

    #[test]
    fn per_shard_compaction_keeps_shards_disjoint() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 2).unwrap();
        // Two appends so every shard holds two segments built from two
        // *shared* corpus blobs.
        for batch in 0..2 {
            let docs = lines(&format!("b{batch}x"), 24);
            let corpus = corpus_of(store.clone(), &format!("c/b{batch}"), &docs);
            router.append(&corpus, &config()).unwrap();
        }
        let before: BTreeSet<(String, u64)> = router
            .open_searcher()
            .unwrap()
            .search("shared", None)
            .unwrap()
            .hits
            .iter()
            .map(|h| (h.blob.clone(), h.offset))
            .collect();
        assert_eq!(before.len(), 48);

        let reports = router
            .compact(
                &config(),
                &CompactionPolicy::new()
                    .with_max_live_segments(1)
                    .with_merge_factor(8),
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.live_after == 1));

        // The regression this guards: an unfiltered rebuild would pull
        // the sibling shard's documents out of the shared blobs, and
        // every document would then be served twice.
        let searcher = router.open_searcher().unwrap();
        let after: Vec<(String, u64)> = searcher
            .search("shared", None)
            .unwrap()
            .hits
            .iter()
            .map(|h| (h.blob.clone(), h.offset))
            .collect();
        assert_eq!(after.len(), 48, "no duplicates after compaction");
        assert_eq!(after.iter().cloned().collect::<BTreeSet<_>>(), before);
        for batch in 0..2 {
            for i in 0..24 {
                let word = format!("b{batch}xdoc{i}");
                assert_eq!(
                    searcher.search(&word, None).unwrap().hits.len(),
                    1,
                    "{word}"
                );
            }
        }
    }

    #[test]
    fn refresh_swaps_the_whole_shard_set_atomically() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        let corpus = corpus_of(store.clone(), "c/a", &lines("a", 16));
        router.append(&corpus, &config()).unwrap();

        let server = QueryServer::start(
            Arc::new(router.open_searcher().unwrap()),
            ServerConfig::new().with_workers(2),
        );
        let count = |server: &QueryServer| {
            server
                .execute(&Query::term("shared"), &QueryOptions::new())
                .unwrap()
                .hits
                .len()
        };
        assert_eq!(count(&server), 16);

        // Grow every shard, then swap the whole set in one refresh.
        let corpus = corpus_of(store.clone(), "c/b", &lines("b", 16));
        router.append(&corpus, &config()).unwrap();
        assert_eq!(count(&server), 16, "old snapshot serves until refresh");
        server.refresh(Arc::new(router.open_searcher().unwrap()));
        assert_eq!(count(&server), 32, "new snapshot serves the whole set");
        let stats = server.shutdown();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn layout_v2_roundtrip_and_v1_compat() {
        let layout = ShardLayout {
            generation: 3,
            shards: 4,
            regions: vec!["us-central1-c".into(), "europe-west2-c".into()],
            homes: vec![vec![0], vec![1], vec![0, 1], vec![]],
        };
        let decoded = ShardLayout::decode("idx", &layout.encode()).unwrap();
        assert_eq!(decoded, layout);
        assert_eq!(decoded.replica_regions(0), vec!["us-central1-c"]);
        assert_eq!(
            decoded.replica_regions(2),
            vec!["us-central1-c", "europe-west2-c"]
        );
        // An empty home means "everywhere".
        assert_eq!(
            decoded.replica_regions(3),
            vec!["us-central1-c", "europe-west2-c"]
        );
        // Pre-generation v1 blobs decode as generation 1, single-home.
        let v1 = ShardLayout::decode("idx", b"airphant-shards v1\nshards 4\n").unwrap();
        assert_eq!((v1.generation, v1.shards), (1, 4));
        assert!(v1.regions.is_empty() && v1.homes.is_empty());
        // Generation 1 keeps the legacy un-scoped shard directories;
        // later generations are scoped so both can coexist.
        assert_eq!(v1.shard_prefix("idx", 2), "idx/shard-0002");
        assert_eq!(layout.shard_prefix("idx", 2), "idx/gen0003/shard-0002");
    }

    #[test]
    fn corrupt_v2_layouts_are_typed_errors() {
        let cases: Vec<&[u8]> = vec![
            b"airphant-shards v2\nshards 4\n".as_slice(), // missing generation
            b"airphant-shards v2\ngeneration x\nshards 4\n".as_slice(),
            b"airphant-shards v2\ngeneration 0\nshards 4\n".as_slice(),
            b"airphant-shards v2\ngeneration 2\nshards 4\nregion\t\n".as_slice(),
            b"airphant-shards v2\ngeneration 2\nshards 2\nregion\tus\nshard\t1\t0\n".as_slice(),
            b"airphant-shards v2\ngeneration 2\nshards 2\nregion\tus\nshard\t0\t7\n".as_slice(),
            b"airphant-shards v2\ngeneration 2\nshards 2\nregion\tus\nshard\t0\t0\n".as_slice(),
            b"airphant-shards v2\ngeneration 2\nshards 2\nbogus\trecord\n".as_slice(),
        ];
        for bytes in cases {
            assert!(
                matches!(
                    ShardLayout::decode("idx", bytes),
                    Err(AirphantError::CorruptManifest { .. })
                ),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    fn canonical(hits: Vec<crate::SearchHit>) -> Vec<(String, u64, u32, String)> {
        let mut out: Vec<_> = hits
            .into_iter()
            .map(|h| (h.blob, h.offset, h.len, h.text))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn split_migrates_docs_and_serves_old_generation_until_gc() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 2).unwrap();
        for batch in 0..2 {
            let docs = lines(&format!("s{batch}x"), 24);
            let corpus = corpus_of(store.clone(), &format!("c/s{batch}"), &docs);
            router.append(&corpus, &config()).unwrap();
        }
        let old_searcher = router.open_searcher().unwrap();
        assert_eq!(old_searcher.layout_generation(), 1);
        let before = canonical(old_searcher.search("shared", None).unwrap().hits);
        assert_eq!(before.len(), 48);

        let (split_router, old_layout) = router
            .split(
                &config(),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        assert_eq!(split_router.shards(), 4);
        assert_eq!(split_router.generation(), 2);
        assert_eq!(old_layout.generation, 1);

        // The published layout is the new one …
        let reopened = ShardRouter::open(store.clone(), "idx").unwrap();
        assert_eq!((reopened.shards(), reopened.generation()), (4, 2));
        // … but the old snapshot keeps serving its generation unchanged.
        assert_eq!(
            canonical(old_searcher.search("shared", None).unwrap().hits),
            before
        );
        // The new generation is byte-for-byte equivalent and disjoint.
        let new_searcher = reopened.open_searcher().unwrap();
        assert_eq!(new_searcher.layout_generation(), 2);
        assert_eq!(
            canonical(new_searcher.search("shared", None).unwrap().hits),
            before
        );
        let per_shard: usize = new_searcher
            .shards()
            .iter()
            .map(|s| s.search("shared", None).unwrap().hits.len())
            .sum();
        assert_eq!(per_shard, 48, "shards partition the corpus");

        // GC refuses the live generation, reclaims the superseded one.
        assert!(matches!(
            split_router.gc_generation(split_router.layout()),
            Err(AirphantError::InvalidConfig { .. })
        ));
        let deleted = split_router.gc_generation(&old_layout).unwrap();
        assert!(deleted > 0, "old shard dirs reclaimed");
        assert_eq!(
            canonical(new_searcher.search("shared", None).unwrap().hits),
            before,
            "GC of the old generation never touches the live one"
        );
    }

    #[test]
    fn merge_halves_the_layout_and_preserves_results() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        let corpus = corpus_of(store.clone(), "c/a", &lines("m", 32));
        router.append(&corpus, &config()).unwrap();
        let before = canonical(
            router
                .open_searcher()
                .unwrap()
                .search("shared", None)
                .unwrap()
                .hits,
        );
        let (merged, old_layout) = router
            .merge(
                &config(),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        assert_eq!((merged.shards(), merged.generation()), (2, 2));
        assert_eq!(
            canonical(
                merged
                    .open_searcher()
                    .unwrap()
                    .search("shared", None)
                    .unwrap()
                    .hits
            ),
            before
        );
        merged.gc_generation(&old_layout).unwrap();
        // A second reshard stacks another generation (2 -> 3).
        let (split_again, _) = merged
            .split(
                &config(),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        assert_eq!((split_again.shards(), split_again.generation()), (4, 3));
        assert_eq!(
            canonical(
                split_again
                    .open_searcher()
                    .unwrap()
                    .search("shared", None)
                    .unwrap()
                    .hits
            ),
            before
        );
    }

    #[test]
    fn merge_rejects_odd_and_single_shard_layouts() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        for shards in [1usize, 3] {
            let router =
                ShardRouter::create(store.clone(), format!("idx{shards}"), shards).unwrap();
            assert!(matches!(
                router.merge(
                    &config(),
                    Arc::new(LineSplitter),
                    Arc::new(WhitespaceTokenizer),
                ),
                Err(AirphantError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn concurrent_reshard_loses_the_layout_cas() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router_a = ShardRouter::create(store.clone(), "idx", 2).unwrap();
        let corpus = corpus_of(store.clone(), "c/a", &lines("c", 8));
        router_a.append(&corpus, &config()).unwrap();
        let router_b = ShardRouter::open(store.clone(), "idx").unwrap();
        router_a
            .split(
                &config(),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        // B still holds generation 1; its reshard must fail loudly, not
        // clobber A's published generation 2.
        match router_b.split(
            &config(),
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        ) {
            Err(AirphantError::InvalidConfig { .. }) => {}
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("stale router must not reshard over a newer generation"),
        }
        let live = ShardRouter::open(store, "idx").unwrap();
        assert_eq!((live.shards(), live.generation()), (4, 2));
    }

    #[test]
    fn resharding_a_regioned_layout_rehomes_round_robin() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let layout = ShardLayout {
            generation: 1,
            shards: 2,
            regions: vec!["us-central1-c".into(), "europe-west2-c".into()],
            homes: vec![vec![0], vec![1]],
        };
        store
            .put_if_version(&layout_blob("idx"), layout.encode(), Version::Absent)
            .unwrap();
        let router = ShardRouter::open(store.clone(), "idx").unwrap();
        for shard in 0..2 {
            router.manager(shard).ensure_manifest().unwrap();
        }
        let corpus = corpus_of(store.clone(), "c/a", &lines("r", 12));
        router.append(&corpus, &config()).unwrap();
        let (split_router, _) = router
            .split(
                &config(),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        let next = split_router.layout();
        assert_eq!(next.regions, layout.regions, "regions carry forward");
        assert_eq!(next.homes.len(), 4);
        for (shard, home) in next.homes.iter().enumerate() {
            assert_eq!(home, &vec![shard % 2], "round-robin homing");
        }
        assert_eq!(
            split_router.layout().replica_regions(1),
            vec!["europe-west2-c"]
        );
    }

    #[test]
    fn engine_trait_over_sharded_searcher() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 2).unwrap();
        let corpus = corpus_of(store.clone(), "c/a", &lines("e", 12));
        router.append(&corpus, &config()).unwrap();
        let engine: Box<dyn SearchEngine> = Box::new(router.open_searcher().unwrap());
        assert_eq!(engine.name(), "AIRPHANT-sharded");
        assert_eq!(engine.search("edoc3", None).unwrap().hits.len(), 1);
        let (postings, _) = engine.lookup("shared").unwrap();
        assert!(!postings.is_empty());
        assert!(engine.index_bytes() > 0);
        assert!(engine.init_trace().bytes() > 0);
    }
}
