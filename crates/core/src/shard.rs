//! Horizontal sharding: hash-partitioned corpora across N independent
//! segmented indexes, served with scatter-gather query execution.
//!
//! A single (even segmented) index funnels every query through one
//! sketch and one postings-fetch path; the scale-out axis is
//! partitioning the *corpus itself*. A [`ShardRouter`] owns a sharded
//! layout under one base prefix:
//!
//! ```text
//! {base}/shards                  the layout blob: "airphant-shards v1"
//! {base}/shard-0000/manifest     shard 0: an ordinary segmented index
//! {base}/shard-0000/seg-…/…
//! {base}/shard-0001/manifest     shard 1, …
//! ```
//!
//! **Routing.** A document belongs to exactly one shard:
//! `shard_of(blob, offset) = fnv1a(blob ‖ offset) mod N`. The rule is a
//! pure function of the document's identity, so appends, compactions,
//! and queries all agree on placement without coordination, and every
//! shard can rebuild its slice of a shared corpus blob through a
//! [`DocFilter`] view ([`Corpus::with_doc_filter`]).
//!
//! **Scatter-gather.** [`ShardedSearcher`] implements
//! [`SearchEngine`]: a query fans out to all shards in parallel (each
//! shard runs the ordinary single-batch planner over its own segments),
//! then the per-shard results merge deterministically — hits in stable
//! doc-id order (`(blob, offset)`), counters summed, and the trace
//! combined with [`QueryTrace::merge_parallel`] so round trips report
//! the **max over shards** (the fan-out overlaps) rather than the sum.
//! Sharding therefore preserves the paper's constant-round-trip
//! property: an N-shard lookup is still one dependent postings round
//! trip followed by one document round trip.
//!
//! **Refresh.** A [`ShardedSearcher`] is an immutable snapshot of every
//! shard's manifest generation. After appends or compactions, reopen
//! the router and hand the fresh snapshot to
//! [`QueryServer::refresh`](crate::QueryServer::refresh): the whole
//! shard set swaps atomically behind one `Arc`, so no query ever sees
//! a mix of old and new shard generations.

use crate::builder::BuildReport;
use crate::compact::{CompactionPolicy, CompactionReport, Compactor};
use crate::config::AirphantConfig;
use crate::error::AirphantError;
use crate::query::{Query, QueryOptions};
use crate::result::SearchResult;
use crate::segments::{SegmentManager, SegmentedSearcher};
use crate::Result;
use airphant_corpus::{Corpus, CorpusProfile, DocFilter, Tokenizer, WhitespaceTokenizer};
use airphant_storage::{ObjectStore, QueryTrace, StorageError, Version};
use bytes::Bytes;
use iou_sketch::PostingsList;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// First line of the layout blob: format magic + version.
const LAYOUT_MAGIC: &str = "airphant-shards v1";

/// Blob name of the shard-layout record under `base`. Its existence is
/// what marks a prefix as a *sharded* index (the way a `manifest` blob
/// marks a segmented one).
pub(crate) fn layout_blob(base: &str) -> String {
    format!("{base}/shards")
}

/// Route a document identity to a shard: FNV-1a over the blob name and
/// byte offset, reduced mod `shards`. Deterministic and
/// coordination-free — builders, compactors, and queries all derive the
/// same placement from the document alone.
pub fn shard_of(blob: &str, offset: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1, "a layout has at least one shard");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in blob.as_bytes().iter().copied().chain(offset.to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Per-shard outcome of one [`ShardRouter::append`].
#[derive(Debug)]
pub struct ShardAppend {
    /// The shard index.
    pub shard: usize,
    /// Documents the routing rule sent to this shard.
    pub docs: u64,
    /// The build report of the shard's new segment (`None` when no
    /// documents routed here — the shard's manifest is left untouched).
    pub report: Option<BuildReport>,
    /// The new segment's prefix, when one was appended.
    pub segment_prefix: Option<String>,
}

/// Manages a sharded index layout: creates the per-shard segmented
/// indexes, routes appends, runs per-shard compaction, and opens
/// scatter-gather searchers.
pub struct ShardRouter {
    store: Arc<dyn ObjectStore>,
    base: String,
    shards: usize,
}

impl ShardRouter {
    /// Create (or re-open) a sharded layout of `shards` partitions under
    /// `base`. Publishing the layout blob is a CAS against absence, so
    /// two racing creators converge on one layout; creating over an
    /// existing layout with a *different* shard count is rejected
    /// (repartitioning is a rebuild, not a config flip). Every shard's
    /// segment manifest is published up front, so an empty shard is
    /// distinguishable from a missing one.
    pub fn create(
        store: Arc<dyn ObjectStore>,
        base: impl Into<String>,
        shards: usize,
    ) -> Result<Self> {
        if shards < 1 {
            return Err(AirphantError::InvalidConfig {
                reason: "a sharded layout needs at least one shard".into(),
            });
        }
        let base = base.into();
        let name = layout_blob(&base);
        let payload = Bytes::from(format!("{LAYOUT_MAGIC}\nshards {shards}\n"));
        match store.put_if_version(&name, payload, Version::Absent) {
            Ok(_) => {}
            Err(StorageError::VersionMismatch { .. }) => {
                // Lost the creation race (or the layout predates us):
                // adopt the existing layout if it agrees on the count.
                let existing = Self::open(store.clone(), base.clone())?;
                if existing.shards != shards {
                    return Err(AirphantError::InvalidConfig {
                        reason: format!(
                            "index {base} is already sharded {} ways (asked for {shards}); \
                             repartitioning requires a rebuild under a fresh prefix",
                            existing.shards
                        ),
                    });
                }
            }
            Err(e) => return Err(e.into()),
        }
        let router = ShardRouter {
            store,
            base,
            shards,
        };
        for shard in 0..router.shards {
            router.manager(shard).ensure_manifest()?;
        }
        Ok(router)
    }

    /// Open an existing sharded layout rooted at `base`.
    pub fn open(store: Arc<dyn ObjectStore>, base: impl Into<String>) -> Result<Self> {
        let base = base.into();
        let fetched = match store.get(&layout_blob(&base)) {
            Ok(f) => f,
            Err(StorageError::BlobNotFound { .. }) => {
                return Err(AirphantError::IndexNotFound {
                    prefix: base.clone(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let shards = Self::decode_layout(&base, &fetched.bytes)?;
        Ok(ShardRouter {
            store,
            base,
            shards,
        })
    }

    /// Whether a sharded layout exists under `base` (the auto-detection
    /// hook: a `shards` blob marks the prefix, the way `manifest` marks
    /// a segmented index).
    pub fn is_sharded(store: &Arc<dyn ObjectStore>, base: &str) -> bool {
        store.exists(&layout_blob(base))
    }

    fn decode_layout(base: &str, bytes: &[u8]) -> Result<usize> {
        let corrupt = |reason: String| AirphantError::CorruptManifest {
            base: base.to_owned(),
            reason,
        };
        let text = std::str::from_utf8(bytes)
            .map_err(|e| corrupt(format!("shard layout is not valid UTF-8: {e}")))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(LAYOUT_MAGIC) => {}
            other => {
                return Err(corrupt(format!(
                    "unrecognized shard layout header {other:?} (expected {LAYOUT_MAGIC:?})"
                )));
            }
        }
        let shards = match lines.next().and_then(|l| l.strip_prefix("shards ")) {
            Some(n) => n
                .parse::<usize>()
                .map_err(|_| corrupt(format!("unknown shard count format {n:?}")))?,
            None => return Err(corrupt("missing shard count record".to_owned())),
        };
        if shards < 1 {
            return Err(corrupt("shard layout declares zero shards".to_owned()));
        }
        Ok(shards)
    }

    /// The object store the shards live in.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// The base prefix of this sharded index.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Number of shards in the layout.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a document routes to under this layout.
    pub fn route(&self, blob: &str, offset: u64) -> usize {
        shard_of(blob, offset, self.shards)
    }

    /// The prefix of shard `shard`'s segmented index.
    pub fn shard_prefix(&self, shard: usize) -> String {
        format!("{}/shard-{shard:04}", self.base)
    }

    /// The [`SegmentManager`] of one shard.
    pub fn manager(&self, shard: usize) -> SegmentManager {
        SegmentManager::new(self.store.clone(), self.shard_prefix(shard))
    }

    /// The routing predicate for one shard — the [`DocFilter`] that
    /// restricts a shared corpus to the documents this shard indexes.
    pub fn doc_filter(&self, shard: usize) -> DocFilter {
        let shards = self.shards;
        Arc::new(move |doc| shard_of(&doc.blob, doc.offset, shards) == shard)
    }

    /// Index `corpus` across the shards: each document goes to exactly
    /// one shard by the routing rule, and each shard that receives any
    /// documents gains one new immutable segment (published atomically
    /// in that shard's manifest). Returns one [`ShardAppend`] per shard.
    ///
    /// All N shard profiles are computed in **one** pass over the
    /// corpus (routing + tokenizing each document into its shard's
    /// accumulator); each non-empty shard then pays one build pass over
    /// its filtered view. An N-shard append therefore reads the corpus
    /// `1 + populated_shards` times, not `1 + 2N`.
    pub fn append(&self, corpus: &Corpus, config: &AirphantConfig) -> Result<Vec<ShardAppend>> {
        #[derive(Default)]
        struct ProfileAcc {
            n_docs: u64,
            n_words: u64,
            total_bytes: u64,
            doc_distinct_sizes: Vec<u64>,
            doc_freqs: HashMap<String, u64>,
        }
        let tokenizer = corpus.tokenizer().clone();
        let mut accs: Vec<ProfileAcc> = (0..self.shards).map(|_| ProfileAcc::default()).collect();
        corpus.for_each_document(|doc| {
            let acc = &mut accs[shard_of(&doc.blob, doc.offset, self.shards)];
            acc.n_docs += 1;
            acc.total_bytes += doc.len as u64;
            let tokens = tokenizer.tokens(&doc.text);
            acc.n_words += tokens.len() as u64;
            let distinct: BTreeSet<String> = tokens.into_iter().collect();
            acc.doc_distinct_sizes.push(distinct.len() as u64);
            for w in distinct {
                *acc.doc_freqs.entry(w).or_insert(0) += 1;
            }
        })?;
        let mut out = Vec::with_capacity(self.shards);
        for (shard, acc) in accs.into_iter().enumerate() {
            let docs = acc.n_docs;
            if docs == 0 {
                out.push(ShardAppend {
                    shard,
                    docs,
                    report: None,
                    segment_prefix: None,
                });
                continue;
            }
            let profile = CorpusProfile {
                n_docs: acc.n_docs,
                n_terms: acc.doc_freqs.len() as u64,
                n_words: acc.n_words,
                total_bytes: acc.total_bytes,
                doc_distinct_sizes: acc.doc_distinct_sizes,
                doc_freqs: acc.doc_freqs,
            };
            let view = corpus.with_doc_filter(self.doc_filter(shard));
            let (report, prefix) = self
                .manager(shard)
                .append_with_profile(&view, config, profile)?;
            out.push(ShardAppend {
                shard,
                docs,
                report: Some(report),
                segment_prefix: Some(prefix),
            });
        }
        Ok(out)
    }

    /// Compact every shard under `policy` (whitespace tokenizer).
    pub fn compact(
        &self,
        config: &AirphantConfig,
        policy: &CompactionPolicy,
    ) -> Result<Vec<CompactionReport>> {
        self.compact_with_tokenizer(config, policy, Arc::new(WhitespaceTokenizer))
    }

    /// Compact every shard: each shard runs an ordinary [`Compactor`]
    /// over its own manifest, with the shard's routing filter installed
    /// so merged rebuilds re-index only this shard's slice of the
    /// (shared) corpus blobs.
    pub fn compact_with_tokenizer(
        &self,
        config: &AirphantConfig,
        policy: &CompactionPolicy,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<Vec<CompactionReport>> {
        let mut reports = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let manager = self.manager(shard);
            let report = Compactor::new(&manager, config.clone())
                .with_tokenizer(tokenizer.clone())
                .with_doc_filter(self.doc_filter(shard))
                .with_policy(policy.clone())
                .compact()?;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Each shard's current manifest generation.
    pub fn generations(&self) -> Result<Vec<u64>> {
        (0..self.shards)
            .map(|shard| self.manager(shard).generation())
            .collect()
    }

    /// Every shard's index prefix, in shard order, verifying each
    /// shard's segment manifest exists — a hole in the layout fails
    /// with the shard-naming [`AirphantError::ShardNotFound`]. This is
    /// the validation `segments`/`compact`-style tooling should run
    /// before walking the shards.
    pub fn shard_bases(&self) -> Result<Vec<String>> {
        (0..self.shards)
            .map(|shard| {
                if !self.manager(shard).manifest_exists() {
                    return Err(AirphantError::ShardNotFound {
                        base: self.base.clone(),
                        shard,
                        shards: self.shards,
                    });
                }
                Ok(self.shard_prefix(shard))
            })
            .collect()
    }

    /// Open a scatter-gather searcher over every shard's live segment
    /// set (whitespace tokenizer).
    pub fn open_searcher(&self) -> Result<ShardedSearcher> {
        self.open_searcher_with_tokenizer(Arc::new(WhitespaceTokenizer))
    }

    /// Open with a custom document-word parser (must match what the
    /// shards were built with). A shard whose manifest blob is missing
    /// is a hole in the layout and fails with the shard-naming
    /// [`AirphantError::ShardNotFound`]; a shard with zero live
    /// segments is merely empty and serves no hits.
    pub fn open_searcher_with_tokenizer(
        &self,
        tokenizer: Arc<dyn Tokenizer>,
    ) -> Result<ShardedSearcher> {
        self.shard_bases()?;
        let shards = (0..self.shards)
            .map(|shard| self.manager(shard).open_inner(tokenizer.clone(), true))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedSearcher { shards })
    }
}

/// A scatter-gather query server over N shard snapshots — a consistent
/// view of every shard's manifest generation at open time.
pub struct ShardedSearcher {
    shards: Vec<SegmentedSearcher>,
}

impl ShardedSearcher {
    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard segmented snapshots (for introspection).
    pub fn shards(&self) -> &[SegmentedSearcher] {
        &self.shards
    }

    /// The manifest generation each shard was opened at.
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.generation()).collect()
    }

    /// Scatter `op` across the shards in parallel and gather the
    /// per-shard outcomes in shard order. Shard-thread panics resume on
    /// the caller (where the serving layer's catch_unwind contains
    /// them).
    fn scatter<T: Send>(
        &self,
        op: impl Fn(&SegmentedSearcher) -> Result<T> + Sync,
    ) -> Vec<Result<T>> {
        if self.shards.len() <= 1 {
            return self.shards.iter().map(&op).collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(|| op(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }

    /// Execute a [`Query`] across every shard in parallel and merge:
    /// hits in stable doc-id order (`(blob, offset)` — routing makes
    /// shards disjoint, so no dedup is needed), candidate/false-positive
    /// counters summed, and the trace merged with
    /// [`QueryTrace::merge_parallel`] so the reported round trips are
    /// the max over shards (the fan-out overlaps), not the sum.
    pub fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        let gathered = self.scatter(|shard| shard.execute(query, opts));
        let mut hits = Vec::new();
        let mut traces = Vec::with_capacity(gathered.len());
        let mut candidates = 0usize;
        let mut dropped = 0usize;
        for outcome in gathered {
            let result = outcome?;
            hits.extend(result.hits);
            traces.push(result.trace);
            candidates += result.candidates;
            dropped += result.false_positives_removed;
        }
        hits.sort_by(|a, b| {
            a.blob
                .cmp(&b.blob)
                .then(a.offset.cmp(&b.offset))
                .then(a.len.cmp(&b.len))
        });
        if let Some(k) = opts.top_k {
            hits.truncate(k);
        }
        Ok(SearchResult {
            hits,
            trace: if opts.capture_trace {
                QueryTrace::merge_parallel(&traces)
            } else {
                QueryTrace::new()
            },
            candidates,
            false_positives_removed: dropped,
        })
    }

    /// Index-lookup phase only: every shard's candidate postings,
    /// unioned, with the merged (max-over-shards) lookup trace.
    pub fn execute_lookup(&self, query: &Query) -> Result<(PostingsList, QueryTrace)> {
        let gathered = self.scatter(|shard| shard.execute_lookup(query));
        let mut postings = PostingsList::new();
        let mut traces = Vec::with_capacity(gathered.len());
        for outcome in gathered {
            let (list, trace) = outcome?;
            postings.union_with(&list);
            traces.push(trace);
        }
        Ok((postings, QueryTrace::merge_parallel(&traces)))
    }

    /// Single-keyword search across all shards; thin shim over
    /// [`ShardedSearcher::execute`].
    pub fn search(&self, word: &str, top_k: Option<usize>) -> Result<SearchResult> {
        self.execute(&Query::term(word), &QueryOptions::new().with_top_k(top_k))
    }
}

impl crate::SearchEngine for ShardedSearcher {
    fn name(&self) -> &'static str {
        "AIRPHANT-sharded"
    }

    fn init_trace(&self) -> QueryTrace {
        // Shards initialize concurrently, each fanning out its own
        // segment-header downloads.
        QueryTrace::merge_parallel(
            &self
                .shards
                .iter()
                .map(crate::SearchEngine::init_trace)
                .collect::<Vec<_>>(),
        )
    }

    fn lookup(&self, word: &str) -> Result<(PostingsList, QueryTrace)> {
        self.execute_lookup(&Query::term(word))
    }

    fn execute(&self, query: &Query, opts: &QueryOptions) -> Result<SearchResult> {
        ShardedSearcher::execute(self, query, opts)
    }

    fn index_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(crate::SearchEngine::index_bytes)
            .sum()
    }
}

// One sharded snapshot behind one `Arc` serves every worker of a
// `QueryServer`, same as the single-index engines.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardRouter>();
    assert_send_sync::<ShardedSearcher>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{QueryServer, ServerConfig};
    use crate::SearchEngine;
    use airphant_corpus::LineSplitter;
    use airphant_storage::{InMemoryStore, LatencyModel, SimulatedCloudStore};
    use std::collections::BTreeSet;

    fn corpus_of(store: Arc<dyn ObjectStore>, blob: &str, lines: &[String]) -> Corpus {
        store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
        Corpus::new(
            store,
            vec![blob.to_owned()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
    }

    fn config() -> AirphantConfig {
        AirphantConfig::default()
            .with_total_bins(128)
            .with_common_fraction(0.0)
            .with_seed(3)
    }

    fn lines(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shared {prefix}doc{i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_shard() {
        for shards in [1usize, 2, 4, 8] {
            let mut seen = vec![0usize; shards];
            for i in 0..1_000u64 {
                let s = shard_of("corpus/blob", i * 17, shards);
                assert_eq!(s, shard_of("corpus/blob", i * 17, shards));
                seen[s] += 1;
            }
            assert!(
                seen.iter().all(|&c| c > 0),
                "{shards} shards must all receive documents, got {seen:?}"
            );
        }
    }

    #[test]
    fn create_open_roundtrip_and_mismatch_rejected() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        assert_eq!(router.shards(), 4);
        assert!(ShardRouter::is_sharded(&store, "idx"));
        assert!(!ShardRouter::is_sharded(&store, "other"));
        // Every shard's manifest exists up front.
        for shard in 0..4 {
            assert!(router.manager(shard).manifest_exists());
        }
        // Re-creating with the same count adopts the layout.
        assert_eq!(
            ShardRouter::create(store.clone(), "idx", 4)
                .unwrap()
                .shards(),
            4
        );
        // A different count is a rebuild, not a config flip.
        assert!(matches!(
            ShardRouter::create(store.clone(), "idx", 8),
            Err(AirphantError::InvalidConfig { .. })
        ));
        let reopened = ShardRouter::open(store.clone(), "idx").unwrap();
        assert_eq!(reopened.shards(), 4);
        assert!(matches!(
            ShardRouter::open(store, "missing"),
            Err(AirphantError::IndexNotFound { .. })
        ));
    }

    #[test]
    fn corrupt_layout_is_a_typed_error() {
        let cases: Vec<&[u8]> = vec![
            b"\xff\xfe garbage".as_slice(),
            b"not-a-layout\nshards 4".as_slice(),
            b"airphant-shards v1\n".as_slice(),
            b"airphant-shards v1\nshards four".as_slice(),
            b"airphant-shards v1\nshards 0".as_slice(),
        ];
        for bytes in cases {
            let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
            store
                .put("idx/shards", Bytes::from(bytes.to_vec()))
                .unwrap();
            assert!(matches!(
                ShardRouter::open(store, "idx"),
                Err(AirphantError::CorruptManifest { .. })
            ));
        }
    }

    #[test]
    fn append_routes_every_document_to_exactly_one_shard() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        let docs = lines("a", 40);
        let corpus = corpus_of(store.clone(), "c/a", &docs);
        let appends = router.append(&corpus, &config()).unwrap();
        assert_eq!(appends.len(), 4);
        assert_eq!(appends.iter().map(|a| a.docs).sum::<u64>(), 40);
        let searcher = router.open_searcher().unwrap();
        // Every document findable exactly once through the fan-out …
        for i in 0..40 {
            let hits = searcher.search(&format!("adoc{i}"), None).unwrap().hits;
            assert_eq!(hits.len(), 1, "adoc{i}");
        }
        assert_eq!(searcher.search("shared", None).unwrap().hits.len(), 40);
        // … and the shards partition the corpus (disjoint, exhaustive).
        let per_shard: Vec<usize> = searcher
            .shards()
            .iter()
            .map(|s| s.search("shared", None).unwrap().hits.len())
            .collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 40);
        assert_eq!(
            per_shard,
            appends.iter().map(|a| a.docs as usize).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sharded_results_match_unsharded_in_doc_id_order() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs: Vec<String> = (0..60)
            .map(|i| format!("common w{} tag{}", i % 7, i % 3))
            .collect();
        let corpus = corpus_of(store.clone(), "c/a", &docs);
        // Unsharded reference: one segmented index over the same corpus.
        let unsharded = SegmentManager::new(store.clone(), "flat");
        unsharded.append(&corpus, &config()).unwrap();
        let flat = unsharded.open().unwrap();
        let canonical = |mut hits: Vec<crate::SearchHit>| {
            hits.sort_by(|a, b| (&a.blob, a.offset, a.len).cmp(&(&b.blob, b.offset, b.len)));
            hits.into_iter()
                .map(|h| (h.blob, h.offset, h.len, h.text))
                .collect::<Vec<_>>()
        };
        for shards in [1usize, 2, 4, 8] {
            let router =
                ShardRouter::create(store.clone(), format!("idx{shards}"), shards).unwrap();
            router.append(&corpus, &config()).unwrap();
            let sharded = router.open_searcher().unwrap();
            for query in [
                Query::term("common"),
                Query::all([Query::term("w3"), Query::term("tag0")]),
                Query::any([Query::term("w1"), Query::term("w5")]),
                Query::term("absent"),
            ] {
                let s = sharded.execute(&query, &QueryOptions::new()).unwrap();
                let f = flat.execute(&query, &QueryOptions::new()).unwrap();
                // The sharded merge arrives already in doc-id order.
                let as_tuples: Vec<_> = s
                    .hits
                    .iter()
                    .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
                    .collect();
                assert_eq!(canonical(s.hits.clone()), as_tuples);
                assert_eq!(
                    canonical(s.hits),
                    canonical(f.hits),
                    "{shards} shards, {query:?}"
                );
            }
        }
    }

    #[test]
    fn top_k_truncates_deterministically_in_doc_id_order() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let docs = lines("t", 30);
        let corpus = corpus_of(store.clone(), "c/a", &docs);
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        router.append(&corpus, &config()).unwrap();
        let searcher = router.open_searcher().unwrap();
        let a = searcher.search("shared", Some(7)).unwrap();
        let b = searcher.search("shared", Some(7)).unwrap();
        assert_eq!(a.hits.len(), 7);
        let ids = |r: &SearchResult| {
            r.hits
                .iter()
                .map(|h| (h.blob.clone(), h.offset))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b), "merge order is stable across runs");
        let mut sorted = ids(&a);
        sorted.sort();
        assert_eq!(ids(&a), sorted, "hits arrive in doc-id order");
    }

    #[test]
    fn empty_shards_serve_and_missing_manifest_names_the_shard() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 8).unwrap();
        // One document: 7 of 8 shards stay empty but still open + serve.
        let corpus = corpus_of(store.clone(), "c/one", &["solo entry".to_owned()]);
        router.append(&corpus, &config()).unwrap();
        let searcher = router.open_searcher().unwrap();
        assert_eq!(searcher.shard_count(), 8);
        assert_eq!(searcher.search("solo", None).unwrap().hits.len(), 1);
        assert!(searcher.search("absent", None).unwrap().hits.is_empty());

        // Punch a hole: delete shard 5's manifest. The open must name
        // the missing shard, not report a generic IndexNotFound.
        store
            .delete(&format!("{}/manifest", router.shard_prefix(5)))
            .unwrap();
        match router.open_searcher() {
            Err(AirphantError::ShardNotFound {
                base,
                shard,
                shards,
            }) => {
                assert_eq!(base, "idx");
                assert_eq!(shard, 5);
                assert_eq!(shards, 8);
            }
            Err(other) => panic!("expected ShardNotFound, got {other:?}"),
            Ok(_) => panic!("expected ShardNotFound, got a searcher"),
        }
    }

    #[test]
    fn scatter_gather_trace_reports_max_over_shards_round_trips() {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            13,
        ));
        let dyn_store: Arc<dyn ObjectStore> = store.clone();
        let router = ShardRouter::create(dyn_store.clone(), "idx", 4).unwrap();
        let docs = lines("r", 48);
        let corpus = corpus_of(dyn_store.clone(), "c/a", &docs);
        router.append(&corpus, &config()).unwrap();
        let searcher = router.open_searcher().unwrap();

        let (_, lookup_trace) = searcher.execute_lookup(&Query::term("shared")).unwrap();
        assert_eq!(
            lookup_trace.round_trips(),
            1,
            "4-shard fan-out is still one dependent lookup round trip"
        );
        let r = searcher
            .execute(&Query::term("shared"), &QueryOptions::new())
            .unwrap();
        assert_eq!(r.hits.len(), 48);
        assert_eq!(
            r.trace.round_trips(),
            2,
            "lookup + documents, max over shards (not 2 x 4)"
        );
    }

    #[test]
    fn per_shard_compaction_keeps_shards_disjoint() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 2).unwrap();
        // Two appends so every shard holds two segments built from two
        // *shared* corpus blobs.
        for batch in 0..2 {
            let docs = lines(&format!("b{batch}x"), 24);
            let corpus = corpus_of(store.clone(), &format!("c/b{batch}"), &docs);
            router.append(&corpus, &config()).unwrap();
        }
        let before: BTreeSet<(String, u64)> = router
            .open_searcher()
            .unwrap()
            .search("shared", None)
            .unwrap()
            .hits
            .iter()
            .map(|h| (h.blob.clone(), h.offset))
            .collect();
        assert_eq!(before.len(), 48);

        let reports = router
            .compact(
                &config(),
                &CompactionPolicy::new()
                    .with_max_live_segments(1)
                    .with_merge_factor(8),
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.live_after == 1));

        // The regression this guards: an unfiltered rebuild would pull
        // the sibling shard's documents out of the shared blobs, and
        // every document would then be served twice.
        let searcher = router.open_searcher().unwrap();
        let after: Vec<(String, u64)> = searcher
            .search("shared", None)
            .unwrap()
            .hits
            .iter()
            .map(|h| (h.blob.clone(), h.offset))
            .collect();
        assert_eq!(after.len(), 48, "no duplicates after compaction");
        assert_eq!(after.iter().cloned().collect::<BTreeSet<_>>(), before);
        for batch in 0..2 {
            for i in 0..24 {
                let word = format!("b{batch}xdoc{i}");
                assert_eq!(
                    searcher.search(&word, None).unwrap().hits.len(),
                    1,
                    "{word}"
                );
            }
        }
    }

    #[test]
    fn refresh_swaps_the_whole_shard_set_atomically() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 4).unwrap();
        let corpus = corpus_of(store.clone(), "c/a", &lines("a", 16));
        router.append(&corpus, &config()).unwrap();

        let server = QueryServer::start(
            Arc::new(router.open_searcher().unwrap()),
            ServerConfig::new().with_workers(2),
        );
        let count = |server: &QueryServer| {
            server
                .execute(&Query::term("shared"), &QueryOptions::new())
                .unwrap()
                .hits
                .len()
        };
        assert_eq!(count(&server), 16);

        // Grow every shard, then swap the whole set in one refresh.
        let corpus = corpus_of(store.clone(), "c/b", &lines("b", 16));
        router.append(&corpus, &config()).unwrap();
        assert_eq!(count(&server), 16, "old snapshot serves until refresh");
        server.refresh(Arc::new(router.open_searcher().unwrap()));
        assert_eq!(count(&server), 32, "new snapshot serves the whole set");
        let stats = server.shutdown();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn engine_trait_over_sharded_searcher() {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let router = ShardRouter::create(store.clone(), "idx", 2).unwrap();
        let corpus = corpus_of(store.clone(), "c/a", &lines("e", 12));
        router.append(&corpus, &config()).unwrap();
        let engine: Box<dyn SearchEngine> = Box::new(router.open_searcher().unwrap());
        assert_eq!(engine.name(), "AIRPHANT-sharded");
        assert_eq!(engine.search("edoc3", None).unwrap().hits.len(), 1);
        let (postings, _) = engine.lookup("shared").unwrap();
        assert!(!postings.is_empty());
        assert!(engine.index_bytes() > 0);
        assert!(engine.init_trace().bytes() > 0);
    }
}
