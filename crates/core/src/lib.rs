//! # airphant
//!
//! The Airphant search engine (ICDE 2022): keyword search with every byte —
//! documents, superposts, and index header — persisted in cloud object
//! storage, and a lightweight stateless Searcher that answers queries with
//! a *single batch of concurrent storage reads* thanks to the IoU Sketch.
//!
//! ## Components (§III-C)
//!
//! * [`Builder`] — profiles a corpus, optimizes the IoU Sketch structure
//!   (Algorithm 1), constructs superposts, compacts them into blocks, and
//!   persists the header block.
//! * [`Searcher`] — initializes once per corpus (downloads the header,
//!   reconstructs the MHT in memory), then serves queries: hash → one
//!   concurrent superpost batch → intersect → fetch documents → filter.
//!
//! ## Quick start
//!
//! Every lookup goes through one API: build a [`Query`] (a term, a
//! boolean combination, a phrase, a substring pattern, a prefix, or a
//! fuzzy term), then [`Searcher::execute`] it. The planner resolves
//! *all* of the query's terms and grams from the in-memory MHT — prefix
//! and fuzzy atoms are first expanded against the index vocabulary —
//! and fetches every superpost in a **single** concurrent batch:
//! compound queries pay the same one round-trip wait as single keywords.
//!
//! ```
//! use std::sync::Arc;
//! use airphant::{AirphantConfig, Builder, Query, QueryOptions, Searcher};
//! use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
//! use airphant_storage::{InMemoryStore, ObjectStore};
//! use bytes::Bytes;
//!
//! let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
//! store.put(
//!     "corpus/blob-0",
//!     Bytes::from_static(b"hello world\nhello airphant\nbye airphant"),
//! ).unwrap();
//! let corpus = Corpus::new(
//!     store.clone(),
//!     vec!["corpus/blob-0".into()],
//!     Arc::new(LineSplitter),
//!     Arc::new(WhitespaceTokenizer),
//! );
//!
//! let config = AirphantConfig::default().with_total_bins(256);
//! let built = Builder::new(config).build(&corpus, "index").unwrap();
//!
//! let searcher = Searcher::open(store, "index").unwrap();
//!
//! // Single keyword — the convenience shim over `execute`.
//! let result = searcher.search("airphant", None).unwrap();
//! assert_eq!(result.hits.len(), 2);
//!
//! // Compound query: both terms' superposts arrive in ONE storage batch.
//! let query = Query::term("hello").and(Query::term("airphant"));
//! let result = searcher.execute(&query, &QueryOptions::new()).unwrap();
//! assert_eq!(result.hits.len(), 1);
//! assert!(result.hits[0].text.contains("hello airphant"));
//! assert_eq!(
//!     result.trace.round_trips_of(airphant_storage::PhaseKind::Postings),
//!     1,
//! );
//!
//! // Top-k with the sampled fetch of Equation 6.
//! let top = searcher
//!     .execute(&Query::term("hello"), &QueryOptions::new().top_k(1))
//!     .unwrap();
//! assert_eq!(top.hits.len(), 1);
//!
//! // Typeahead: resolve every vocabulary term starting with "air" —
//! // still one postings batch after expansion.
//! let ahead = searcher
//!     .execute(&Query::prefix("air"), &QueryOptions::new())
//!     .unwrap();
//! assert_eq!(ahead.hits.len(), 2);
//! # let _ = built;
//! ```
//!
//! ## API stability (v1 contract)
//!
//! The query surface is designed to grow without breaking downstream
//! matches or constructor calls:
//!
//! * [`Query`], [`AirphantError`], and [`SubmitError`] are
//!   `#[non_exhaustive]`: embedders must match with a wildcard arm, and
//!   new query atoms or error variants are additive, not breaking.
//! * Construct queries through the constructors ([`Query::term`],
//!   [`Query::all`], [`Query::any`], [`Query::phrase`],
//!   [`Query::substring`], [`Query::prefix`], [`Query::fuzzy`]) or the
//!   fluent [`QueryBuilder`] chain
//!   (`Query::term("x").and(Query::prefix("ty")).top_k(10)`) rather than
//!   variant literals.
//! * [`QueryOptions`] grows by builder-style setters with unchanged
//!   defaults; a default-constructed `QueryOptions` always means "the
//!   exact, untraced, full-result query".
//! * Index capabilities degrade to *typed errors*, never panics: a
//!   prefix/fuzzy query against a segment without a vocabulary section
//!   is [`AirphantError::UnsupportedQuery`], and v1 segments keep
//!   decoding and answering every query shape they supported when they
//!   were written.

#![warn(missing_docs)]

pub mod admission;
pub mod builder;
pub mod compact;
pub mod config;
pub mod engine;
pub mod error;
mod expand;
pub mod memtable;
pub mod plan;
pub mod query;
pub mod result;
pub mod retrieval;
pub mod searcher;
pub mod segments;
pub mod serve;
pub mod shard;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats, Priority, QuotaConfig};
pub use builder::{BuildReport, Builder};
pub use compact::{CompactionPolicy, CompactionReport, Compactor};
pub use config::AirphantConfig;
pub use engine::{SearchEngine, StagedEngine};
pub use error::AirphantError;
pub use expand::EXPANSION_CAP;
pub use memtable::{FlushPolicy, FlushReport, Flusher, FlusherStats, LiveIndex, Memtable};
pub use plan::execute_with_lookup;
pub use query::{Query, QueryBuilder, QueryOptions};
pub use result::{SearchHit, SearchResult};
pub use searcher::Searcher;
pub use segments::{Manifest, SegmentEntry, SegmentManager, SegmentedSearcher};
pub use serve::{
    AsyncQueryServer, AsyncServerConfig, AsyncTicket, HedgeConfig, QueryResponse, QueryServer,
    ServeError, ServerConfig, ServerStats, SubmitError, SubmitSpec, Ticket,
};
pub use shard::{shard_of, ShardAppend, ShardLayout, ShardRouter, ShardedSearcher};

// Segment-format types, re-exported so embedders and the CLI can select
// and introspect the on-wire format without depending on `iou_sketch`.
pub use iou_sketch::{ByteClass, FormatVersion, LayerDirectory, SectionInfo, SegmentFormat};

/// Convenient `Result` alias.
pub type Result<T> = std::result::Result<T, AirphantError>;
