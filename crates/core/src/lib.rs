//! # airphant
//!
//! The Airphant search engine (ICDE 2022): keyword search with every byte —
//! documents, superposts, and index header — persisted in cloud object
//! storage, and a lightweight stateless Searcher that answers queries with
//! a *single batch of concurrent storage reads* thanks to the IoU Sketch.
//!
//! ## Components (§III-C)
//!
//! * [`Builder`] — profiles a corpus, optimizes the IoU Sketch structure
//!   (Algorithm 1), constructs superposts, compacts them into blocks, and
//!   persists the header block.
//! * [`Searcher`] — initializes once per corpus (downloads the header,
//!   reconstructs the MHT in memory), then serves queries: hash → one
//!   concurrent superpost batch → intersect → fetch documents → filter.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use airphant::{AirphantConfig, Builder, Searcher};
//! use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
//! use airphant_storage::{InMemoryStore, ObjectStore};
//! use bytes::Bytes;
//!
//! let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
//! store.put("corpus/blob-0", Bytes::from_static(b"hello world\nhello airphant")).unwrap();
//! let corpus = Corpus::new(
//!     store.clone(),
//!     vec!["corpus/blob-0".into()],
//!     Arc::new(LineSplitter),
//!     Arc::new(WhitespaceTokenizer),
//! );
//!
//! let config = AirphantConfig::default().with_total_bins(256);
//! let built = Builder::new(config).build(&corpus, "index").unwrap();
//!
//! let searcher = Searcher::open(store, "index").unwrap();
//! let result = searcher.search("airphant", None).unwrap();
//! assert_eq!(result.hits.len(), 1);
//! assert!(result.hits[0].text.contains("airphant"));
//! # let _ = built;
//! ```

#![warn(missing_docs)]

pub mod boolean;
pub mod builder;
pub mod config;
pub mod engine;
pub mod error;
pub mod result;
pub mod retrieval;
pub mod searcher;
pub mod segments;
pub mod substring;

pub use boolean::BoolQuery;
pub use builder::{BuildReport, Builder};
pub use config::AirphantConfig;
pub use engine::SearchEngine;
pub use error::AirphantError;
pub use result::{SearchHit, SearchResult};
pub use searcher::Searcher;
pub use segments::{SegmentManager, SegmentedSearcher};

/// Convenient `Result` alias.
pub type Result<T> = std::result::Result<T, AirphantError>;
