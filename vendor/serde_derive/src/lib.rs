//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and stats
//! types, but nothing in the offline build actually serializes those types
//! through serde (the JSON the bench harness writes goes through the
//! vendored `serde_json` stub's `Value`). These derives therefore expand to
//! the marker-trait impls of the vendored `serde` and nothing more.

use proc_macro::TokenStream;

/// Emit `impl serde::Serialize` for the decorated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    // The vendored `serde::Serialize` is blanket-implemented, so there is
    // nothing to emit; the derive exists so `#[derive(Serialize)]` parses.
    TokenStream::new()
}

/// Emit `impl serde::Deserialize` for the decorated type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
