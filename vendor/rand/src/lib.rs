//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Deterministic under seeding, which is all the workspace requires: every
//! RNG in the reproduction is explicitly seeded so experiments replay
//! bit-identically. `StdRng` here is xoshiro256** seeded via splitmix64 —
//! not the real crate's ChaCha12, so absolute draws differ from upstream
//! rand, but all in-repo consumers only rely on determinism and uniformity.

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample a uniform value of `Self` from an RNG word stream.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw a uniform value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value of an inferred type (`rng.gen::<f64>()` is `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(2..=4);
            assert!((2..=4).contains(&v));
            let f = rng.gen_range(-4.0..1.0);
            assert!((-4.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b} out of tolerance");
        }
    }
}
