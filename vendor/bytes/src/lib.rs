//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the exact subset of the `bytes` API the workspace
//! uses: cheaply cloneable immutable [`Bytes`] (with zero-copy `slice`),
//! a growable [`BytesMut`] builder, and the [`BufMut`] write methods.
//! Semantics match the real crate for this subset; performance
//! characteristics are close enough for the simulated-latency experiments
//! (network cost dominates everywhere buffers are on a hot path).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Wrap a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Resize to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(b: &[u8]) -> Self {
        BytesMut { vec: b.to_vec() }
    }
}

/// Write-side buffer methods (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slice() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(&b[..], b"hello world");
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        let s2 = s.slice(1..3);
        assert_eq!(&s2[..], b"or");
        assert_eq!(b.len(), 11);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_u32_le(0xAABBCCDD);
        m.put_slice(b"xy");
        m.resize(10, 0);
        let frozen = m.freeze();
        assert_eq!(frozen.len(), 10);
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[1..5], &[0xDD, 0xCC, 0xBB, 0xAA]);
    }
}
