//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with `#![proptest_config]`), range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, acceptable for these tests:
//! * no shrinking — a failing case reports its inputs via panic message
//!   (every generated binding is `Debug`-formatted into the failure);
//! * deterministic seeding derived from the test function's name, so runs
//!   are reproducible without a persistence file.

use std::fmt::Debug;

/// Error type carried by `prop_assert*` failures.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one generated test case. `Ok(false)` means "assumption
/// rejected, skip the case".
pub type CaseResult = Result<(), TestCaseError>;

/// Runner configuration.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Deterministic generator state for one property run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary byte string (the test's name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit word (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// `any::<T>()` support: the full domain of `T`.
pub trait Arbitrary: Sized + Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        /// Vector of values from `elem`, with length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Rejected assumption: treat the case as vacuously passing.
            return Ok(());
        }
    };
}

/// Define property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 1..32)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ", )+ ""),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}\ninputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, f in -2.0f64..3.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-2.0..3.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn tuples_and_assume(t in (0u32..4, 0u64..100), n in 0usize..10) {
            prop_assume!(n > 0);
            prop_assert_eq!((t.0 as u64).min(3), t.0.min(3) as u64);
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
