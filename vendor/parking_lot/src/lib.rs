//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's non-poisoning `lock()` /
//! `read()` / `write()` signatures (a poisoned std lock is recovered rather
//! than propagated, matching parking_lot's behaviour of not poisoning).

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
