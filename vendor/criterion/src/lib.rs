//! Offline stand-in for `criterion`.
//!
//! Compiles and runs the workspace's benches without the real statistical
//! machinery: each benchmark runs its closure for a short, fixed number of
//! iterations and prints a mean wall-clock time. Good enough to smoke-test
//! bench targets offline; use the real criterion for publishable numbers.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Bench configuration and registry handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub keeps runs short regardless.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub keeps runs short regardless.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to each benchmark closure to drive iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // One calibration sample, then the timed samples.
    let mut total = Duration::ZERO;
    let mut iters_done = 0u64;
    for _ in 0..samples.min(5) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters_done += b.iters;
    }
    let mean = total.as_secs_f64() / iters_done.max(1) as f64;
    println!("bench {id:<50} {:>12.3} µs/iter", mean * 1e6);
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("with", 42), &42, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }

    #[test]
    fn api_smoke() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
    }
}
