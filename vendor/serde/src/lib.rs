//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as blanket-implemented marker traits
//! and re-exports the no-op derive macros, so `#[derive(Serialize,
//! Deserialize)]` and `T: Serialize` bounds compile without the real crate.
//! No actual serialization happens through these traits in this workspace;
//! the bench harness's JSON output uses the vendored `serde_json::Value`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize` (blanket-implemented).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
