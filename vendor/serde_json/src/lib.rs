//! Offline stand-in for `serde_json`.
//!
//! Provides the subset the bench harness uses: a [`Value`] tree, the
//! [`json!`] object/array macro, and [`to_vec_pretty`]. Conversion into
//! `Value` goes through the [`ToJson`] trait (instead of serde's
//! `Serialize`) so `json!` can take interpolated expressions by reference.

use std::fmt;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers within `2^53` print exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] by reference (`json!`'s interpolation hook).
pub trait ToJson {
    /// Build the JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
num_to_json!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self[..].to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Convert anything [`ToJson`] into a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Build a [`Value`] with JSON-like syntax:
/// `json!({"key": expr, ...})`, `json!([a, b])`, `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($k:literal : $v:expr),+ $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($k).to_string(), $crate::to_value(&$v)) ),+
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        f.write_str(&out)
    }
}

/// Serialization error (never produced by this stub; kept for signature
/// compatibility with `serde_json`).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Pretty-print with two-space indentation, as `serde_json::to_vec_pretty`.
pub fn to_vec_pretty<T: ToJson + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0, true);
    Ok(out.into_bytes())
}

/// Compact string form, as `serde_json::to_string`.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_and_arrays() {
        let name = String::from("fig");
        let rows = vec![json!({"a": 1u64}), json!({"a": 2u64})];
        let v = json!({
            "experiment": name,
            "rows": rows,
            "mean_ms": 12.5,
            "ok": true,
            "label": "x",
        });
        let s = v.to_string();
        assert!(s.contains("\"experiment\":\"fig\""));
        assert!(s.contains("\"rows\":[{\"a\":1},{\"a\":2}]"));
        assert!(s.contains("\"mean_ms\":12.5"));
        // `name` and `rows` were interpolated by reference and still usable.
        assert_eq!(name, "fig");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": json!([1u32, 2u32]), "empty": json!({})});
        let bytes = to_vec_pretty(&v).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("{\n  \"k\": [\n    1,\n    2\n  ]"));
        assert!(text.contains("\"empty\": {}"));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(v.to_string(), r#"{"s":"a\"b\\c\nd"}"#);
    }
}
