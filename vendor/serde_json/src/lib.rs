//! Offline stand-in for `serde_json`.
//!
//! Provides the subset the bench harness uses: a [`Value`] tree, the
//! [`json!`] object/array macro, and [`to_vec_pretty`]. Conversion into
//! `Value` goes through the [`ToJson`] trait (instead of serde's
//! `Serialize`) so `json!` can take interpolated expressions by reference.

use std::fmt;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers within `2^53` print exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] by reference (`json!`'s interpolation hook).
pub trait ToJson {
    /// Build the JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
num_to_json!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self[..].to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Value {
    /// Object field access by key (`None` for non-objects and missing
    /// keys), as `serde_json`'s `Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `&str` inside a `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside a `Value::Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside a `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items of a `Value::Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Convert anything [`ToJson`] into a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Build a [`Value`] with JSON-like syntax:
/// `json!({"key": expr, ...})`, `json!([a, b])`, `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($k:literal : $v:expr),+ $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($k).to_string(), $crate::to_value(&$v)) ),+
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        f.write_str(&out)
    }
}

/// Serialization/deserialization error. Serialization in this stub
/// never fails; deserialization reports what broke and where.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Pretty-print with two-space indentation, as `serde_json::to_vec_pretty`.
pub fn to_vec_pretty<T: ToJson + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0, true);
    Ok(out.into_bytes())
}

/// Compact string form, as `serde_json::to_string`.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Parse a JSON document into a [`Value`] tree, as
/// `serde_json::from_str::<Value>`. Recursive descent over the grammar
/// this stub's writer emits (objects, arrays, strings with the standard
/// escapes incl. `\uXXXX`, numbers, booleans, null); trailing non-space
/// input is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

/// Parse JSON bytes (must be UTF-8), as `serde_json::from_slice::<Value>`.
pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "expected {literal:?} at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(&c) = self.bytes.get(self.pos) {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| {
                        Error::new("unterminated escape at end of input".to_owned())
                    })?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    Error::new(format!("truncated \\u escape at byte {}", self.pos))
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new(format!("invalid \\u escape {hex:?}")))?;
                            self.pos += 4;
                            // This stub's writer only emits BMP escapes
                            // (control characters); surrogate pairs are
                            // out of scope and rejected.
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::new(format!("\\u{hex} is not a scalar value"))
                            })?);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{:?}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string".to_owned())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_and_arrays() {
        let name = String::from("fig");
        let rows = vec![json!({"a": 1u64}), json!({"a": 2u64})];
        let v = json!({
            "experiment": name,
            "rows": rows,
            "mean_ms": 12.5,
            "ok": true,
            "label": "x",
        });
        let s = v.to_string();
        assert!(s.contains("\"experiment\":\"fig\""));
        assert!(s.contains("\"rows\":[{\"a\":1},{\"a\":2}]"));
        assert!(s.contains("\"mean_ms\":12.5"));
        // `name` and `rows` were interpolated by reference and still usable.
        assert_eq!(name, "fig");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let v = json!({
            "bench": "throughput",
            "metric": "qps_sim",
            "value": 65.6,
            "unit": "qps",
            "config": json!({"workers": 8u64, "nested": [1u64, 2u64], "flag": true, "none": json!(null)}),
            "note": "quotes \" and \\ and\nnewlines \u{0001}",
        });
        let compact = from_str(&v.to_string()).unwrap();
        assert_eq!(compact, v);
        let pretty = from_slice(&to_vec_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
        // Accessors.
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("throughput"));
        assert_eq!(v.get("value").and_then(Value::as_f64), Some(65.6));
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("flag"))
                .and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("nested"))
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "1.2.3",
            "{} trailing",
            "{\"a\": \"\\q\"}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} must fail");
        }
        assert!(from_slice(b"\xff\xfe").is_err());
    }

    #[test]
    fn parse_numbers_and_scalars() {
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-0.5e2").unwrap(), Value::Number(-50.0));
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": json!([1u32, 2u32]), "empty": json!({})});
        let bytes = to_vec_pretty(&v).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("{\n  \"k\": [\n    1,\n    2\n  ]"));
        assert!(text.contains("\"empty\": {}"));
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(v.to_string(), r#"{"s":"a\"b\\c\nd"}"#);
    }
}
