//! Overload semantics of the async admission-controlled serving core:
//! for any query mix and any (small) queue bound, admitted queries —
//! High priority above all — return byte-for-byte the results of the
//! unloaded sync path, every rejection is a typed
//! [`SubmitError::Overloaded`] (never a `QueueFull` panic or a silent
//! drop), and the flow conserves: `served + sheds == submitted`.

use airphant::{
    AdmissionConfig, AirphantConfig, AsyncQueryServer, AsyncServerConfig, AsyncTicket, Builder,
    Priority, Query, QueryOptions, SearchHit, Searcher, StagedEngine, SubmitError, SubmitSpec,
};
use airphant_corpus::{synth::word_token, zipf, SyntheticSpec};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::Arc;

fn canonical(hits: &[SearchHit]) -> Vec<(String, u64, u32, String)> {
    let mut v: Vec<_> = hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
        .collect();
    v.sort();
    v
}

/// Random AST from an opcode tape (the stack-machine idiom of
/// `query_properties.rs`): 0 pushes a term, 1 folds AND, 2 folds OR.
fn ast_from_tape(tape: &[(u8, u16)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, w) in tape {
        match op {
            1 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::all([a, b]));
            }
            2 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::any([a, b]));
            }
            _ => stack.push(Query::term(word_token(w as u64))),
        }
    }
    if stack.len() == 1 {
        stack.pop().unwrap()
    } else {
        Query::any(stack)
    }
}

/// One zipf corpus behind a simulated cloud, indexed once per case.
fn build_searcher(n_docs: u64, corpus_seed: u64) -> Arc<Searcher> {
    let inner = Arc::new(InMemoryStore::new());
    let store: Arc<dyn ObjectStore> = inner.clone();
    let spec = SyntheticSpec {
        n_docs,
        n_vocab: 60,
        words_per_doc: 5,
    };
    let corpus = zipf(spec, store.clone(), "corpora/zipf", corpus_seed);
    Builder::new(
        AirphantConfig::default()
            .with_total_bins(96)
            .with_manual_layers(2)
            .with_common_fraction(0.0)
            .with_seed(7),
    )
    .build(&corpus, "idx")
    .unwrap();
    let view: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        inner,
        LatencyModel::gcs_like(),
        corpus_seed,
    ));
    Arc::new(Searcher::open(view, "idx").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mix of H/N/L queries against a deliberately tiny queue:
    /// the caller-pumped executor admits nothing-completes-yet style
    /// (every `try_submit` lands on a genuinely full queue), so the
    /// watermarks, typed rejections, equality, and conservation are all
    /// exercised on the same run.
    #[test]
    fn overload_semantics_for_any_mix(
        n_docs in 40u64..120,
        corpus_seed in 0u64..1_000,
        max_in_flight in 4usize..12,
        jobs in prop::collection::vec(
            (0u8..3, prop::collection::vec((0u8..3, 0u16..70), 1..6)),
            12..40,
        ),
    ) {
        let searcher = build_searcher(n_docs, corpus_seed);
        let server = AsyncQueryServer::start(
            searcher.clone() as Arc<dyn StagedEngine>,
            AsyncServerConfig::new()
                .with_executor_threads(0)
                .with_admission(AdmissionConfig::with_max_in_flight(max_in_flight)),
        );

        let mut admitted: Vec<(Query, Priority, AsyncTicket)> = Vec::new();
        let mut sheds = 0u64;
        for (class_code, tape) in &jobs {
            let class = match class_code {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            };
            let query = ast_from_tape(tape);
            // Nothing completes until drain(), so in-flight only grows:
            // every submission past a watermark sees a full queue.
            match server.try_submit(
                query.clone(),
                QueryOptions::new(),
                SubmitSpec::new().with_class(class),
            ) {
                Ok(ticket) => admitted.push((query, class, ticket)),
                Err(err) => {
                    sheds += 1;
                    // Typed, class-tagged, with a drain hint — and never
                    // the sync pool's QueueFull.
                    match err {
                        SubmitError::Overloaded { class: c, retry_after } => {
                            prop_assert_eq!(c, class);
                            prop_assert!(retry_after > airphant_storage::SimDuration::ZERO);
                        }
                        other => {
                            return Err(TestCaseError(format!(
                                "expected Overloaded, got {other:?}"
                            )));
                        }
                    }
                }
            }
        }

        // The watermark ordering: if any High was shed the queue was at
        // its hard limit, which means every Low submitted after the
        // low-watermark crossing was shed too.
        server.drain();

        let mut served = 0u64;
        for (query, class, ticket) in admitted {
            let response = ticket.wait();
            let result = match response.result {
                Ok(r) => r,
                Err(e) => {
                    return Err(TestCaseError(format!(
                        "admitted {class} query failed: {e}"
                    )));
                }
            };
            served += 1;
            // Byte-for-byte the unloaded sync path — checked for every
            // class, with High the load-bearing guarantee.
            let direct = searcher.execute(&query, &QueryOptions::new()).unwrap();
            prop_assert_eq!(
                canonical(&result.hits),
                canonical(&direct.hits),
                "{} query diverged under load",
                class
            );
        }

        // Conservation: hits + sheds == submitted, at both layers.
        let stats = server.shutdown();
        prop_assert_eq!(served + sheds, jobs.len() as u64);
        prop_assert_eq!(stats.completed, served);
        prop_assert_eq!(stats.rejected, sheds);
        prop_assert_eq!(stats.failed + stats.timed_out, 0);
        let adm = stats.admission.expect("async server reports admission stats");
        prop_assert_eq!(adm.submitted, adm.admitted + adm.shed_total());
        prop_assert_eq!(adm.admitted, served);
    }
}

/// Deterministic regression: with the queue held full, Low is shed at
/// half the queue, Normal at 80%, High only at the hard limit — and the
/// classes shed in that order.
#[test]
fn watermarks_shed_in_priority_order() {
    let searcher = build_searcher(60, 3);
    let server = AsyncQueryServer::start(
        searcher as Arc<dyn StagedEngine>,
        AsyncServerConfig::new()
            .with_executor_threads(0)
            .with_admission(AdmissionConfig::with_max_in_flight(10)),
    );
    let submit = |class: Priority| {
        server.try_submit(
            Query::term(word_token(1)),
            QueryOptions::new(),
            SubmitSpec::new().with_class(class),
        )
    };
    let mut tickets = Vec::new();
    for _ in 0..5 {
        tickets.push(submit(Priority::Low).expect("below low watermark"));
    }
    assert!(
        matches!(
            submit(Priority::Low),
            Err(SubmitError::Overloaded {
                class: Priority::Low,
                ..
            })
        ),
        "low watermark (50%) sheds Low"
    );
    for _ in 0..3 {
        tickets.push(submit(Priority::Normal).expect("below normal watermark"));
    }
    assert!(
        matches!(
            submit(Priority::Normal),
            Err(SubmitError::Overloaded {
                class: Priority::Normal,
                ..
            })
        ),
        "normal watermark (80%) sheds Normal"
    );
    for _ in 0..2 {
        tickets.push(submit(Priority::High).expect("High fills to the hard limit"));
    }
    assert!(
        matches!(
            submit(Priority::High),
            Err(SubmitError::Overloaded {
                class: Priority::High,
                ..
            })
        ),
        "the hard limit sheds even High"
    );
    server.drain();
    for t in tickets {
        assert!(t.wait().result.is_ok(), "every admitted query is served");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.rejected, 3);
}
