//! The I/O scheduler composed with the full serving stack: a
//! [`CoalescingStore`] *below* a shared [`CachedStore`] (the ADR-005
//! ordering) must preserve query results byte-for-byte, and two
//! concurrent identical queries must cost exactly one backend postings
//! round trip — the cache single-flights the duplicate, the scheduler
//! coalesces the miss batch, and neither layer re-fetches what the other
//! already has in flight.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{
    CachedStore, CoalescingStore, InMemoryStore, IoStatsSnapshot, LatencyModel, ObjectStore,
    PhaseKind, SchedulerConfig, SimulatedCloudStore,
};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

fn corpus_lines(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("w{} w{} shared{} tail{}", i % 7, i % 13, i % 5, i))
        .collect()
}

fn build_index(store: Arc<dyn ObjectStore>, lines: &[String], prefix: &str) {
    store
        .put("c/blob-0", Bytes::from(lines.join("\n")))
        .unwrap();
    let corpus = Corpus::new(
        store.clone(),
        vec!["c/blob-0".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    );
    Builder::new(
        AirphantConfig::default()
            .with_total_bins(96)
            .with_manual_layers(2)
            .with_common_fraction(0.0)
            .with_seed(11),
    )
    .build(&corpus, prefix)
    .unwrap();
}

/// One full serving stack over a fresh copy of the same corpus:
/// raw → simulated cloud → scheduler → cache → searcher.
struct Stack {
    sim: Arc<SimulatedCloudStore<Arc<dyn ObjectStore>>>,
    scheduler: Arc<CoalescingStore<Arc<dyn ObjectStore>>>,
    cache: Arc<CachedStore<Arc<dyn ObjectStore>>>,
    searcher: Arc<Searcher>,
}

fn stack(lines: &[String], window: Duration) -> Stack {
    let raw: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    build_index(raw.clone(), lines, "idx");
    let sim = Arc::new(SimulatedCloudStore::new(
        raw,
        LatencyModel::gcs_like(),
        4242,
    ));
    let scheduler = Arc::new(CoalescingStore::with_config(
        sim.clone() as Arc<dyn ObjectStore>,
        SchedulerConfig::new().with_batch_window(window),
    ));
    let cache = Arc::new(CachedStore::new(
        scheduler.clone() as Arc<dyn ObjectStore>,
        1 << 20,
    ));
    let searcher = Arc::new(Searcher::open(cache.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
    Stack {
        sim,
        scheduler,
        cache,
        searcher,
    }
}

fn hits_fingerprint(result: &airphant::SearchResult) -> Vec<(String, u64, String)> {
    let mut v: Vec<(String, u64, String)> = result
        .hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.text.clone()))
        .collect();
    v.sort();
    v
}

#[test]
fn two_concurrent_identical_queries_cost_one_backend_postings_round_trip() {
    let lines = corpus_lines(60);
    let query = Query::all([Query::term("w3"), Query::term("shared2")]);
    let opts = QueryOptions::new();

    // Reference: the same query, solo, over an identical fresh stack.
    let solo = stack(&lines, Duration::from_millis(50));
    let solo_init: IoStatsSnapshot = solo.sim.stats(); // header reads
    let solo_result = solo.searcher.execute(&query, &opts).unwrap();
    let solo_cost = solo.sim.stats();

    // Two identical queries racing through ONE shared stack.
    let shared = stack(&lines, Duration::from_millis(50));
    let init = shared.sim.stats();
    let (h0, m0) = shared.cache.hit_stats(); // open-time header reads
    assert_eq!(init.read_requests, solo_init.read_requests, "same init");
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let results: Vec<airphant::SearchResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let searcher = shared.searcher.clone();
                let barrier = barrier.clone();
                let (query, opts) = (query.clone(), opts.clone());
                s.spawn(move || {
                    barrier.wait();
                    searcher.execute(&query, &opts).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-for-byte identical answers, each planned as one postings batch.
    for r in &results {
        assert_eq!(hits_fingerprint(r), hits_fingerprint(&solo_result));
        assert_eq!(r.trace.round_trips_of(PhaseKind::Postings), 1);
    }

    // The whole pair cost the backend exactly what ONE query costs: the
    // cache single-flighted the duplicate ranges, and what did go down
    // went through the scheduler as (merged) batches.
    let cost = shared.sim.stats();
    assert_eq!(
        cost.read_requests - init.read_requests,
        solo_cost.read_requests - solo_init.read_requests,
        "the second identical query must be free at the backend"
    );
    assert_eq!(
        cost.batches - init.batches,
        solo_cost.batches - solo_init.batches,
        "no extra backend round trips for the duplicate query"
    );
    // Every range the pair read cost exactly one miss (whichever thread
    // led it) and one single-flighted hit for the other thread.
    let (hits, misses) = shared.cache.hit_stats();
    assert_eq!(hits - h0, misses - m0, "one miss + one hit per range");
    assert!(shared.scheduler.stats().backend_batches > 0);
}

#[test]
fn scheduler_under_cache_preserves_results_for_distinct_queries() {
    let lines = corpus_lines(80);
    let queries: Vec<Query> = (0..6)
        .map(|i| {
            Query::all([
                Query::term(format!("w{}", i % 7)),
                Query::term(format!("shared{}", i % 5)),
            ])
        })
        .collect();

    // Oracle: every query solo over a plain (scheduler-less) stack.
    let raw: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    build_index(raw.clone(), &lines, "idx");
    let plain = Arc::new(Searcher::open(raw, "idx").unwrap());

    // The scheduled stack serves the same queries from 6 racing threads.
    let shared = stack(&lines, Duration::from_millis(5));
    let results: Vec<(usize, airphant::SearchResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let searcher = shared.searcher.clone();
                let q = q.clone();
                s.spawn(move || (i, searcher.execute(&q, &QueryOptions::new()).unwrap()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, result) in results {
        let oracle = plain.execute(&queries[i], &QueryOptions::new()).unwrap();
        assert_eq!(
            hits_fingerprint(&result),
            hits_fingerprint(&oracle),
            "query {i} through scheduler+cache must match the plain stack"
        );
    }
}
