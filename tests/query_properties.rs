//! Property tests for the unified query planner: ANY randomly composed
//! `Query` AST (a) issues exactly one superpost batch for its whole
//! index-lookup phase and (b) returns exactly the documents a linear
//! scan would — no false negatives from the sketch, no false positives
//! past the verify pass.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Build a random AST from an opcode tape, stack-machine style: opcode 0
/// pushes a term, 1 folds the top two into AND, 2 folds them into OR.
/// Word indices run past the vocabulary so absent words appear too.
fn ast_from_tape(tape: &[(u8, u8)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, w) in tape {
        match op {
            1 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::all([a, b]));
            }
            2 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::any([a, b]));
            }
            _ => stack.push(Query::term(format!("w{w}"))),
        }
    }
    if stack.len() == 1 {
        stack.pop().unwrap()
    } else {
        Query::any(stack)
    }
}

fn doc_text(words: &[u8]) -> String {
    words
        .iter()
        .map(|w| format!("w{w}"))
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_ast_is_single_batch_and_matches_linear_scan(
        docs in prop::collection::vec(prop::collection::vec(0u8..30, 1..6), 1..40),
        tape in prop::collection::vec((0u8..3, 0u8..34), 1..12),
        layers in 1usize..4,
        seed in 0u64..500,
    ) {
        // --- Index the corpus behind a batch-counting store.
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::instantaneous(),
            seed,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let blob = docs.iter().map(|d| doc_text(d)).collect::<Vec<_>>().join("\n");
            s.put("c/docs", bytes::Bytes::from(blob)).unwrap();
            let corpus = Corpus::new(
                s,
                vec!["c/docs".into()],
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            );
            let config = AirphantConfig::default()
                .with_total_bins(48)
                .with_manual_layers(layers)
                .with_common_fraction(0.0)
                .with_seed(seed);
            Builder::new(config).build(&corpus, "idx").unwrap();
        }
        let searcher = Searcher::open(store.clone(), "idx").unwrap();
        let query = ast_from_tape(&tape);

        // --- (a) The whole index-lookup phase is one get_ranges batch.
        store.reset_stats();
        let (_, trace) = searcher.execute_lookup(&query).unwrap();
        let atoms = query.atoms().unwrap();
        if atoms.is_empty() {
            prop_assert_eq!(store.stats().batches, 0);
        } else {
            prop_assert_eq!(store.stats().batches, 1, "atoms: {:?}", atoms);
            prop_assert_eq!(trace.round_trips(), 1);
        }

        // --- (b) Exactness against a linear scan of the raw documents.
        let r = searcher.execute(&query, &QueryOptions::new()).unwrap();
        let got: BTreeSet<String> = r.hits.into_iter().map(|h| h.text).collect();
        let mut expected = BTreeSet::new();
        for d in &docs {
            let text = doc_text(d);
            let has = |w: &str| text.split_ascii_whitespace().any(|t| t == w);
            if query.matches_doc(&has, &text) {
                expected.insert(text);
            }
        }
        prop_assert_eq!(got, expected, "query: {:?}", query);
    }
}
