//! Sharded vs. unsharded equivalence: scatter-gather over N
//! hash-partitioned shards must return byte-for-byte the same result
//! set as a single segmented index over the same zipf corpus — for any
//! query AST, for N ∈ {1, 2, 4, 8}, and identically whether queries run
//! sequentially or from 8 concurrent threads.

use airphant::{
    AirphantConfig, Query, QueryOptions, SearchHit, SegmentManager, ShardRouter, ShardedSearcher,
};
use airphant_corpus::{synth::word_token, zipf, Corpus, SyntheticSpec};
use airphant_storage::{InMemoryStore, ObjectStore};
use proptest::prelude::*;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config(seed: u64) -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(96)
        .with_manual_layers(2)
        .with_common_fraction(0.0)
        .with_seed(seed)
}

/// Byte-for-byte canonical form of a result set: every field of every
/// hit, in stable doc-id order.
fn canonical(hits: &[SearchHit]) -> Vec<(String, u64, u32, String)> {
    let mut v: Vec<_> = hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
        .collect();
    v.sort();
    v
}

/// Random AST over the zipf vocabulary from an opcode tape (the
/// stack-machine idiom of `query_properties.rs`): 0 pushes a term,
/// 1 folds AND, 2 folds OR. Word ranks run past the vocabulary so
/// absent words appear too.
fn ast_from_tape(tape: &[(u8, u16)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, w) in tape {
        match op {
            1 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::all([a, b]));
            }
            2 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::any([a, b]));
            }
            _ => stack.push(Query::term(word_token(w as u64))),
        }
    }
    if stack.len() == 1 {
        stack.pop().unwrap()
    } else {
        Query::any(stack)
    }
}

/// One zipf corpus, one unsharded segmented reference, and a sharded
/// layout per shard count — all in one shared in-memory store.
struct Env {
    flat: airphant::SegmentedSearcher,
    sharded: Vec<(usize, ShardedSearcher)>,
    #[allow(dead_code)]
    corpus: Corpus,
}

fn build_env(n_docs: u64, corpus_seed: u64, build_seed: u64) -> Env {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let spec = SyntheticSpec {
        n_docs,
        n_vocab: 60,
        words_per_doc: 5,
    };
    let corpus = zipf(spec, store.clone(), "corpora/zipf", corpus_seed);
    let flat_mgr = SegmentManager::new(store.clone(), "flat");
    flat_mgr.append(&corpus, &config(build_seed)).unwrap();
    let flat = flat_mgr.open().unwrap();
    let sharded = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let router = ShardRouter::create(store.clone(), format!("idx{n}"), n).unwrap();
            router.append(&corpus, &config(build_seed)).unwrap();
            (n, router.open_searcher().unwrap())
        })
        .collect();
    Env {
        flat,
        sharded,
        corpus,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any AST, any shard count: identical result sets, byte for byte.
    #[test]
    fn sharded_equals_unsharded_for_any_ast(
        n_docs in 40u64..160,
        corpus_seed in 0u64..1_000,
        build_seed in 0u64..1_000,
        tapes in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u16..70), 1..10),
            1..6,
        ),
    ) {
        let env = build_env(n_docs, corpus_seed, build_seed);
        for tape in &tapes {
            let query = ast_from_tape(tape);
            let expected = canonical(
                &env.flat.execute(&query, &QueryOptions::new()).unwrap().hits,
            );
            for (n, searcher) in &env.sharded {
                let got = searcher.execute(&query, &QueryOptions::new()).unwrap();
                prop_assert_eq!(
                    canonical(&got.hits),
                    expected.clone(),
                    "{} shards, query {:?}",
                    n,
                    query
                );
                // The sharded merge is already in stable doc-id order.
                prop_assert_eq!(canonical(&got.hits), {
                    got.hits
                        .iter()
                        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
                        .collect::<Vec<_>>()
                }, "{} shards: merge order must be canonical", n);
            }
        }
    }

    /// The same queries fired from 8 concurrent threads return exactly
    /// the sequential answers at every shard count — the scatter-gather
    /// read path shares no mutable per-query state.
    #[test]
    fn concurrent_sharded_queries_match_sequential(
        corpus_seed in 0u64..1_000,
        tapes in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u16..70), 1..8),
            4..9,
        ),
    ) {
        let env = build_env(96, corpus_seed, 17);
        let queries: Vec<Query> = tapes.iter().map(|t| ast_from_tape(t)).collect();
        for (n, searcher) in &env.sharded {
            let sequential: Vec<_> = queries
                .iter()
                .map(|q| canonical(&searcher.execute(q, &QueryOptions::new()).unwrap().hits))
                .collect();
            let threads = 8;
            let concurrent: Vec<Vec<_>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let queries = &queries;
                        s.spawn(move || {
                            // Each thread walks the query list from its
                            // own starting point so shard fan-outs from
                            // different queries interleave.
                            (0..queries.len())
                                .map(|i| {
                                    let q = &queries[(t + i) % queries.len()];
                                    canonical(
                                        &searcher
                                            .execute(q, &QueryOptions::new())
                                            .unwrap()
                                            .hits,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (t, per_thread) in concurrent.iter().enumerate() {
                for (i, got) in per_thread.iter().enumerate() {
                    let expected = &sequential[(t + i) % queries.len()];
                    prop_assert_eq!(
                        got,
                        expected,
                        "{} shards, thread {}, query {}",
                        n,
                        t,
                        i
                    );
                }
            }
        }
    }
}

/// Non-property regression: the documented fan-out invariants on a
/// fixed corpus — constant round trips and deterministic top-k.
#[test]
fn fanout_round_trips_and_top_k_are_stable() {
    let env = build_env(120, 7, 7);
    let query = Query::term(word_token(1));
    let expected = canonical(&env.flat.execute(&query, &QueryOptions::new()).unwrap().hits);
    assert!(!expected.is_empty(), "rank-1 zipf word must occur");
    for (n, searcher) in &env.sharded {
        let r = searcher.execute(&query, &QueryOptions::new()).unwrap();
        assert_eq!(canonical(&r.hits), expected, "{n} shards");
        assert_eq!(
            r.trace.round_trips(),
            2,
            "{n} shards: lookup + documents, max over shards"
        );
        // Deterministic top-k: two runs agree, and the kept hits are the
        // k smallest doc ids of the full result set.
        let k = expected.len().min(5);
        let a = searcher
            .execute(&query, &QueryOptions::new().top_k(k))
            .unwrap();
        let b = searcher
            .execute(&query, &QueryOptions::new().top_k(k))
            .unwrap();
        assert_eq!(canonical(&a.hits), canonical(&b.hits), "{n} shards");
        assert_eq!(a.hits.len(), k, "{n} shards");
        // Every kept hit is a true hit (the per-shard sampled fetch of
        // Equation 6 may pick different members than the flat index,
        // but never a non-member).
        for hit in canonical(&a.hits) {
            assert!(expected.contains(&hit), "{n} shards: {hit:?}");
        }
    }
}
