//! Prefix and fuzzy query atoms, end to end: any randomly composed AST
//! mixing `Term`, `Prefix`, and `Fuzzy` returns byte-for-byte the
//! documents a linear scan would — through the sync `Searcher`, the
//! staged lookup/complete halves, the async serving core, and
//! scatter-gather sharding at N ∈ {1, 2, 4, 8} — while the whole
//! vocabulary expansion still pays exactly one postings batch. Segments
//! without a vocabulary (format v1) degrade to a typed
//! [`AirphantError::UnsupportedQuery`], never a panic.

use airphant::{
    AirphantConfig, AirphantError, AsyncQueryServer, AsyncServerConfig, Builder, FormatVersion,
    Query, QueryOptions, SearchHit, Searcher, SegmentManager, ServeError, ShardRouter,
    StagedEngine, SubmitSpec,
};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, PhaseKind, SimulatedCloudStore};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn doc_text(words: &[u8]) -> String {
    words
        .iter()
        .map(|w| format!("w{w}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Random AST from an opcode tape, extending the stack-machine idiom of
/// `query_properties.rs` with the new atoms: 0 pushes a term, 1 folds
/// AND, 2 folds OR, 3 pushes a prefix (one-digit stems like `w1` cover
/// `w1`, `w10`..`w19`), 4 pushes a fuzzy term at one edit. Word indices
/// run past the vocabulary so absent stems appear too.
fn ast_from_tape(tape: &[(u8, u8)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, w) in tape {
        match op {
            1 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::all([a, b]));
            }
            2 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::any([a, b]));
            }
            3 => stack.push(Query::prefix(format!("w{}", w % 10))),
            4 => stack.push(Query::fuzzy(format!("w{w}"), 1)),
            _ => stack.push(Query::term(format!("w{w}"))),
        }
    }
    if stack.len() == 1 {
        stack.pop().unwrap()
    } else {
        Query::any(stack)
    }
}

/// Linear-scan oracle over the raw documents, using the full query
/// semantics (`starts_with` for Prefix, bounded edit distance for
/// Fuzzy) on whitespace tokens.
fn oracle(query: &Query, docs: &[Vec<u8>]) -> BTreeSet<String> {
    let mut expected = BTreeSet::new();
    for d in docs {
        let text = doc_text(d);
        let tokens: Vec<String> = text.split_ascii_whitespace().map(str::to_owned).collect();
        if query.matches_tokens(&tokens, &text) {
            expected.insert(text);
        }
    }
    expected
}

fn canonical(hits: &[SearchHit]) -> Vec<(String, u64, u32, String)> {
    let mut v: Vec<_> = hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
        .collect();
    v.sort();
    v
}

fn config(seed: u64) -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(48)
        .with_manual_layers(2)
        .with_common_fraction(0.0)
        .with_seed(seed)
}

fn whitespace_corpus(store: Arc<dyn ObjectStore>, blob: &str, docs: &[Vec<u8>]) -> Corpus {
    let text = docs
        .iter()
        .map(|d| doc_text(d))
        .collect::<Vec<_>>()
        .join("\n");
    store.put(blob, bytes::Bytes::from(text)).unwrap();
    Corpus::new(
        store,
        vec![blob.to_owned()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sync path: any Term/Prefix/Fuzzy AST matches the linear-scan
    /// oracle exactly, and the staged lookup half — which carries the
    /// whole vocabulary expansion — never spends more than one postings
    /// batch.
    #[test]
    fn prefix_fuzzy_ast_matches_oracle_in_one_postings_batch(
        docs in prop::collection::vec(prop::collection::vec(0u8..30, 1..6), 1..40),
        tape in prop::collection::vec((0u8..5, 0u8..34), 1..12),
        seed in 0u64..500,
    ) {
        let store = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::instantaneous(),
            seed,
        ));
        {
            let s: Arc<dyn ObjectStore> = store.clone();
            let corpus = whitespace_corpus(s, "c/docs", &docs);
            Builder::new(config(seed)).build(&corpus, "idx").unwrap();
        }
        let searcher = Searcher::open(store.clone(), "idx").unwrap();
        let query = ast_from_tape(&tape);

        // Staged lookup half: expansion + every expanded atom's
        // superposts in at most one get_ranges batch (zero only when
        // the expansion is empty — no vocabulary word matched).
        store.reset_stats();
        let (_, trace) = searcher.execute_lookup(&query).unwrap();
        let lookup_batches = store.stats().batches;
        prop_assert!(
            lookup_batches <= 1,
            "expansion must not multiply postings batches: {} for {:?}",
            lookup_batches,
            query
        );
        prop_assert_eq!(trace.round_trips(), lookup_batches);

        // Full execution: byte-for-byte the linear scan, and the
        // postings phase of the trace agrees with the staged half.
        store.reset_stats();
        let r = searcher.execute(&query, &QueryOptions::new()).unwrap();
        prop_assert_eq!(
            r.trace.round_trips_of(PhaseKind::Postings),
            lookup_batches
        );
        let got: BTreeSet<String> = r.hits.into_iter().map(|h| h.text).collect();
        prop_assert_eq!(got, oracle(&query, &docs), "query: {:?}", query);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Multi-segment and sharded paths: the expansion unions vocabularies
    /// across segments, so a three-segment flat index and every shard
    /// count return exactly the oracle's answer for any Prefix/Fuzzy AST.
    #[test]
    fn segmented_and_sharded_prefix_fuzzy_match_oracle(
        docs in prop::collection::vec(prop::collection::vec(0u8..30, 1..6), 6..48),
        tapes in prop::collection::vec(
            prop::collection::vec((0u8..5, 0u8..34), 1..8),
            1..5,
        ),
        seed in 0u64..500,
    ) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());

        // Flat reference: the corpus split across three segments, so
        // prefix/fuzzy expansion must union three vocabularies.
        let flat_mgr = SegmentManager::new(store.clone(), "flat");
        let chunk = docs.len().div_ceil(3);
        for (i, part) in docs.chunks(chunk).enumerate() {
            let corpus = whitespace_corpus(store.clone(), &format!("c/part{i}"), part);
            flat_mgr.append(&corpus, &config(seed)).unwrap();
        }
        let flat = flat_mgr.open().unwrap();

        // Sharded layouts over the whole corpus.
        let whole = whitespace_corpus(store.clone(), "c/whole", &docs);
        let sharded: Vec<_> = SHARD_COUNTS
            .iter()
            .map(|&n| {
                let router = ShardRouter::create(store.clone(), format!("idx{n}"), n).unwrap();
                router.append(&whole, &config(seed)).unwrap();
                (n, router.open_searcher().unwrap())
            })
            .collect();

        for tape in &tapes {
            let query = ast_from_tape(tape);
            let expected = oracle(&query, &docs);
            let flat_got: BTreeSet<String> = flat
                .execute(&query, &QueryOptions::new())
                .unwrap()
                .hits
                .into_iter()
                .map(|h| h.text)
                .collect();
            prop_assert_eq!(&flat_got, &expected, "flat segments, query {:?}", query);
            for (n, searcher) in &sharded {
                let got: BTreeSet<String> = searcher
                    .execute(&query, &QueryOptions::new())
                    .unwrap()
                    .hits
                    .into_iter()
                    .map(|h| h.text)
                    .collect();
                prop_assert_eq!(&got, &expected, "{} shards, query {:?}", n, query);
            }
        }
    }
}

/// The async serving core answers Prefix/Fuzzy queries byte-for-byte
/// like the unloaded sync path: expansion happens once at arrival,
/// before staging, inside the same admission-controlled flight.
#[test]
fn async_server_agrees_with_sync_for_prefix_and_fuzzy() {
    let docs: Vec<Vec<u8>> = (0..40u8)
        .map(|i| {
            vec![
                i % 30,
                (i as u16 * 7 % 30) as u8,
                (i as u16 * 13 % 30) as u8,
            ]
        })
        .collect();
    let inner = Arc::new(InMemoryStore::new());
    {
        let s: Arc<dyn ObjectStore> = inner.clone();
        let corpus = whitespace_corpus(s, "c/docs", &docs);
        Builder::new(config(7)).build(&corpus, "idx").unwrap();
    }
    let view: Arc<dyn ObjectStore> =
        Arc::new(SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 7));
    let searcher = Arc::new(Searcher::open(view, "idx").unwrap());

    let queries = [
        Query::prefix("w1"),
        Query::prefix("w2"),
        Query::fuzzy("w5", 1),
        Query::prefix("w1").and(Query::fuzzy("w7", 1)),
        Query::term("w3").or(Query::prefix("w2")),
        Query::prefix("zzz"),
    ];
    let server = AsyncQueryServer::start(
        searcher.clone() as Arc<dyn StagedEngine>,
        AsyncServerConfig::new().with_executor_threads(0),
    );
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| {
            server
                .try_submit(q.clone(), QueryOptions::new(), SubmitSpec::new())
                .unwrap()
        })
        .collect();
    server.drain();
    for (query, ticket) in queries.iter().zip(tickets) {
        let response = ticket.wait();
        let served = response.result.expect("admitted query is served");
        let sync = searcher.execute(query, &QueryOptions::new()).unwrap();
        assert_eq!(
            canonical(&served.hits),
            canonical(&sync.hits),
            "async vs sync for {query:?}"
        );
        let expected = oracle(query, &docs);
        let got: BTreeSet<String> = served.hits.into_iter().map(|h| h.text).collect();
        assert_eq!(got, expected, "oracle for {query:?}");
    }
}

/// A v1 segment has no vocabulary section: Prefix/Fuzzy degrade to a
/// typed `UnsupportedQuery` on every surface — sync, staged, and async
/// (as `ServeError::Failed`) — never a panic, while exact terms keep
/// answering.
#[test]
fn v1_segments_reject_prefix_fuzzy_with_typed_error() {
    let docs: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i, (i + 1) % 12]).collect();
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let corpus = whitespace_corpus(store.clone(), "c/docs", &docs);
    Builder::new(config(3).with_format(FormatVersion::V1))
        .build(&corpus, "idx")
        .unwrap();
    let searcher = Arc::new(Searcher::open(store, "idx").unwrap());

    for query in [Query::prefix("w1"), Query::fuzzy("w5", 1)] {
        // Sync and staged halves.
        for err in [
            searcher
                .execute(&query, &QueryOptions::new())
                .expect_err("no vocabulary"),
            searcher
                .execute_lookup(&query)
                .map(|_| ())
                .expect_err("no vocabulary"),
        ] {
            assert!(
                matches!(err, AirphantError::UnsupportedQuery { .. }),
                "want UnsupportedQuery, got {err:?}"
            );
        }
        // Async path: the same typed error, delivered through the ticket.
        let server = AsyncQueryServer::start(
            searcher.clone() as Arc<dyn StagedEngine>,
            AsyncServerConfig::new().with_executor_threads(0),
        );
        let ticket = server
            .try_submit(query.clone(), QueryOptions::new(), SubmitSpec::new())
            .unwrap();
        server.drain();
        match ticket.wait().result {
            Err(ServeError::Failed(AirphantError::UnsupportedQuery { .. })) => {}
            other => panic!("want Failed(UnsupportedQuery), got {other:?}"),
        }
    }

    // Exact terms still answer on the same v1 index.
    let r = searcher
        .execute(&Query::term("w1"), &QueryOptions::new())
        .unwrap();
    assert_eq!(
        r.hits
            .iter()
            .map(|h| h.text.clone())
            .collect::<BTreeSet<_>>(),
        oracle(&Query::term("w1"), &docs)
    );
}
