//! Cross-crate integration tests: the full pipeline — generate corpus,
//! build every engine, query through the simulated cloud — checked for
//! exactness, agreement, and the paper's headline latency ordering.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, SearchEngine, Searcher};
use airphant_baselines::{
    BTreeBuilder, BTreeEngine, ElasticBuilder, ElasticEngine, HashTableEngine, SkipListBuilder,
    SkipListEngine,
};
use airphant_corpus::{zipf, Corpus, QueryWorkload, SyntheticSpec};
use airphant_storage::{
    InMemoryStore, LatencyModel, LocalFsStore, ObjectStore, SimulatedCloudStore,
};
use std::collections::BTreeSet;
use std::sync::Arc;

fn build_zipf_env() -> (Arc<InMemoryStore>, Corpus) {
    let inner = Arc::new(InMemoryStore::new());
    let spec = SyntheticSpec {
        n_docs: 3_000,
        n_vocab: 2_000,
        words_per_doc: 8,
    };
    let corpus = zipf(spec, inner.clone(), "corpora/zipf", 99);
    (inner, corpus)
}

/// Ground truth by linear scan: the set of doc texts containing `word`.
fn truth_texts(corpus: &Corpus, word: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    corpus
        .for_each_document(|doc| {
            if doc.text.split_ascii_whitespace().any(|t| t == word) {
                out.insert(doc.text.clone());
            }
        })
        .unwrap();
    out
}

#[test]
fn airphant_results_are_exact_against_ground_truth() {
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    Builder::new(AirphantConfig::default().with_total_bins(400).with_seed(5))
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();
    let store: Arc<dyn ObjectStore> = inner.clone();
    let searcher = Searcher::open(store, "idx/a").unwrap();

    for word in QueryWorkload::uniform(&profile, 25, 3).iter() {
        let expected = truth_texts(&corpus, word);
        let got: BTreeSet<String> = searcher
            .search(word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        assert_eq!(got, expected, "word {word}: results must be exact");
    }
}

#[test]
fn all_engines_agree_on_results() {
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    let config = AirphantConfig::default().with_total_bins(400).with_seed(5);
    Builder::new(config.clone())
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();
    HashTableEngine::build(&corpus, "idx/h", &config).unwrap();
    BTreeBuilder::build(&corpus, "idx/b").unwrap();
    SkipListBuilder::build(&corpus, "idx/s").unwrap();
    ElasticBuilder::build(&corpus, "idx/e").unwrap();

    let store: Arc<dyn ObjectStore> = inner.clone();
    let engines: Vec<Box<dyn SearchEngine>> = vec![
        Box::new(Searcher::open(store.clone(), "idx/a").unwrap()),
        Box::new(HashTableEngine::open(store.clone(), "idx/h").unwrap()),
        Box::new(BTreeEngine::open(store.clone(), "idx/b").unwrap()),
        Box::new(SkipListEngine::open(store.clone(), "idx/s").unwrap()),
        Box::new(ElasticEngine::open(store, "idx/e").unwrap()),
    ];
    for word in QueryWorkload::uniform(&profile, 15, 7).iter() {
        let reference: BTreeSet<String> = engines[0]
            .search(word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        for engine in &engines[1..] {
            let got: BTreeSet<String> = engine
                .search(word, None)
                .unwrap()
                .hits
                .into_iter()
                .map(|h| h.text)
                .collect();
            assert_eq!(got, reference, "{} disagrees on {word}", engine.name());
        }
    }
}

#[test]
fn paper_latency_ordering_holds_on_simulated_cloud() {
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    let config = AirphantConfig::default().with_total_bins(400).with_seed(5);
    Builder::new(config.clone())
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();
    BTreeBuilder::build(&corpus, "idx/b").unwrap();
    SkipListBuilder::build(&corpus, "idx/s").unwrap();

    let mean = |engine: &dyn SearchEngine| -> f64 {
        let workload = QueryWorkload::uniform(&profile, 25, 9);
        let total: f64 = workload
            .iter()
            .map(|w| {
                engine
                    .search(w, Some(10))
                    .unwrap()
                    .latency()
                    .as_millis_f64()
            })
            .sum();
        total / workload.len() as f64
    };

    let cloud = |seed: u64| -> Arc<dyn ObjectStore> {
        Arc::new(SimulatedCloudStore::new(
            inner.clone(),
            LatencyModel::gcs_like(),
            seed,
        ))
    };
    let airphant = mean(&Searcher::open(cloud(1), "idx/a").unwrap());
    let sqlite = mean(&BTreeEngine::open(cloud(2), "idx/b").unwrap());
    let lucene = mean(&SkipListEngine::open(cloud(3), "idx/s").unwrap());

    assert!(
        airphant < sqlite && sqlite < lucene,
        "expected AIRPHANT ({airphant:.0}ms) < SQLite ({sqlite:.0}ms) < Lucene ({lucene:.0}ms)"
    );
    // The paper keeps Airphant under 300 ms within-region on every corpus.
    assert!(airphant < 300.0, "AIRPHANT mean {airphant:.0}ms");
}

#[test]
fn index_persists_across_processes_via_local_fs() {
    let dir = std::env::temp_dir().join(format!(
        "airphant-e2e-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    {
        let store: Arc<dyn ObjectStore> = Arc::new(LocalFsStore::new(&dir).unwrap());
        store
            .put(
                "corpus/docs",
                bytes::Bytes::from_static(b"alpha beta\ngamma alpha\ndelta"),
            )
            .unwrap();
        let corpus = Corpus::new(
            store,
            vec!["corpus/docs".into()],
            Arc::new(airphant_corpus::LineSplitter),
            Arc::new(airphant_corpus::WhitespaceTokenizer),
        );
        Builder::new(AirphantConfig::default().with_total_bins(64))
            .build(&corpus, "index")
            .unwrap();
    } // everything dropped: simulate a new process
    {
        let store: Arc<dyn ObjectStore> = Arc::new(LocalFsStore::new(&dir).unwrap());
        let searcher = Searcher::open(store, "index").unwrap();
        let r = searcher.search("alpha", None).unwrap();
        assert_eq!(r.hits.len(), 2);
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn boolean_queries_match_scan_semantics() {
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    Builder::new(AirphantConfig::default().with_total_bins(400).with_seed(5))
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();
    let store: Arc<dyn ObjectStore> = inner.clone();
    let searcher = Searcher::open(store, "idx/a").unwrap();

    let words: Vec<String> = QueryWorkload::uniform(&profile, 4, 13).words().to_vec();
    let query = Query::any([
        Query::all([Query::term(&words[0]), Query::term(&words[1])]),
        Query::all([Query::term(&words[2]), Query::term(&words[3])]),
    ]);
    let result = searcher.execute(&query, &QueryOptions::new()).unwrap();
    // However many terms the DNF mentions, one superpost batch resolves
    // them all (plus one document batch when candidates survive).
    assert!(result.trace.round_trips() <= 2);
    let got: BTreeSet<String> = result.hits.into_iter().map(|h| h.text).collect();

    let mut expected = BTreeSet::new();
    corpus
        .for_each_document(|doc| {
            let tokens: Vec<&str> = doc.text.split_ascii_whitespace().collect();
            let has = |w: &str| tokens.contains(&w);
            if (has(&words[0]) && has(&words[1])) || (has(&words[2]) && has(&words[3])) {
                expected.insert(doc.text.clone());
            }
        })
        .unwrap();
    assert_eq!(got, expected);
}

/// The deprecated query surfaces are thin shims over `execute`: on the
/// zipf corpus they return identical results word for word.
#[test]
fn search_shim_agrees_with_execute_on_zipf() {
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    Builder::new(AirphantConfig::default().with_total_bins(400).with_seed(5))
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();
    let store: Arc<dyn ObjectStore> = inner.clone();
    let searcher = Searcher::open(store, "idx/a").unwrap();

    let texts = |r: airphant::SearchResult| -> BTreeSet<String> {
        r.hits.into_iter().map(|h| h.text).collect()
    };
    let words: Vec<String> = QueryWorkload::uniform(&profile, 8, 21).words().to_vec();

    // search(word, top_k) shim == execute(Term, top_k).
    for word in &words {
        for top_k in [None, Some(5)] {
            let via_shim = texts(searcher.search(word, top_k).unwrap());
            let via_execute = texts(
                searcher
                    .execute(&Query::term(word), &QueryOptions::new().with_top_k(top_k))
                    .unwrap(),
            );
            assert_eq!(via_shim, via_execute, "search() shim for {word}");
        }
    }

    // The fluent chain and the variadic constructor agree on compound
    // queries.
    for pair in words.chunks(2) {
        let q = Query::all([Query::term(&pair[0]), Query::term(&pair[1])]);
        let fluent = Query::term(&pair[0]).and(Query::term(&pair[1]));
        let a = texts(searcher.execute(&q, &QueryOptions::new()).unwrap());
        let b = texts(searcher.execute(&fluent, &QueryOptions::new()).unwrap());
        assert_eq!(a, b, "fluent chain for {pair:?}");
    }
}

#[test]
fn top_k_returns_k_relevant_documents() {
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    Builder::new(AirphantConfig::default().with_total_bins(400).with_seed(5))
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();
    let store: Arc<dyn ObjectStore> = inner.clone();
    let searcher = Searcher::open(store, "idx/a").unwrap();

    // The most frequent words have plenty of matches; top-10 must return
    // exactly 10 relevant documents (δ = 1e-6 failure never observed).
    let by_freq = profile.vocabulary_by_frequency();
    for (word, df) in by_freq.iter().take(5) {
        assert!(*df >= 10, "frequent word {word} has df {df}");
        let r = searcher.search(word, Some(10)).unwrap();
        assert_eq!(r.hits.len(), 10, "top-10 for {word}");
        for h in &r.hits {
            assert!(
                h.text.split_ascii_whitespace().any(|t| t == word),
                "top-k hit must be relevant"
            );
        }
    }
}

#[test]
fn searcher_survives_transient_storage_failures() {
    // Failure injection: a flaky link behind a retrying decorator must not
    // change any result, only add backoff latency.
    use airphant_storage::{FlakyStore, RetryingStore, SimDuration};
    let (inner, corpus) = build_zipf_env();
    let profile = corpus.profile().unwrap();
    Builder::new(AirphantConfig::default().with_total_bins(400).with_seed(5))
        .build_with_profile(&corpus, "idx/a", profile.clone())
        .unwrap();

    let flaky = FlakyStore::new(
        SimulatedCloudStore::new(inner.clone(), LatencyModel::gcs_like(), 1),
        0.25,
        99,
    );
    let resilient = Arc::new(RetryingStore::new(flaky, 10, SimDuration::from_millis(20)));
    let store: Arc<dyn ObjectStore> = resilient.clone();
    let searcher = Searcher::open(store, "idx/a").unwrap();

    let plain_store: Arc<dyn ObjectStore> = inner.clone();
    let reference = Searcher::open(plain_store, "idx/a").unwrap();
    for word in QueryWorkload::uniform(&profile, 20, 31).iter() {
        let got: BTreeSet<String> = searcher
            .search(word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        let expected: BTreeSet<String> = reference
            .search(word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        assert_eq!(got, expected, "retried results must match for {word}");
    }
    assert!(
        resilient.retries() > 0,
        "the flaky link should have forced retries"
    );
}

#[test]
fn segmented_index_matches_monolithic_index() {
    use airphant::SegmentManager;
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());

    // Two halves of one corpus, indexed (a) as two segments and (b) as one
    // monolithic index; results must agree word for word.
    let half1: Vec<String> = (0..300).map(|i| format!("w{} h1-{}", i % 40, i)).collect();
    let half2: Vec<String> = (0..300).map(|i| format!("w{} h2-{}", i % 40, i)).collect();
    let mk_corpus = |blob: &str, lines: &[String]| {
        store
            .put(blob, bytes::Bytes::from(lines.join("\n")))
            .unwrap();
        Corpus::new(
            store.clone(),
            vec![blob.to_owned()],
            Arc::new(airphant_corpus::LineSplitter),
            Arc::new(airphant_corpus::WhitespaceTokenizer),
        )
    };
    let config = AirphantConfig::default()
        .with_total_bins(128)
        .with_common_fraction(0.0);

    let manager = SegmentManager::new(store.clone(), "seg");
    manager.append(&mk_corpus("c/h1", &half1), &config).unwrap();
    manager.append(&mk_corpus("c/h2", &half2), &config).unwrap();
    let segmented = manager.open().unwrap();

    let mut all = half1.clone();
    all.extend(half2.clone());
    Builder::new(config)
        .build(&mk_corpus("c/all", &all), "mono")
        .unwrap();
    let monolithic = Searcher::open(store.clone(), "mono").unwrap();

    for w in 0..44 {
        let word = format!("w{w}");
        let a: BTreeSet<String> = segmented
            .search(&word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        let b: BTreeSet<String> = monolithic
            .search(&word, None)
            .unwrap()
            .hits
            .into_iter()
            .map(|h| h.text)
            .collect();
        assert_eq!(a, b, "segmented vs monolithic disagree on {word}");
    }
}
