//! Property-based cross-crate tests: invariants of the IoU Sketch and its
//! encodings under randomized corpora and structures.

use airphant::{AirphantConfig, Builder, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore};
use bytes::Bytes;
use iou_sketch::encoding::{decode_superpost, encode_superpost, HeaderBlock};
use iou_sketch::{Posting, PostingsList, SketchBuilder, SketchConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Strategy: a small random corpus as (doc -> words) with a bounded vocab.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    // Up to 40 documents, each with up to 8 words drawn from a 30-word
    // vocabulary (word = index).
    prop::collection::vec(prop::collection::vec(0u8..30, 1..8), 1..40)
}

fn docs_to_corpus(docs: &[Vec<u8>], store: Arc<dyn ObjectStore>) -> Corpus {
    let text = docs
        .iter()
        .map(|ws| {
            ws.iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n");
    store.put("c/docs", Bytes::from(text)).unwrap();
    Corpus::new(
        store,
        vec!["c/docs".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant of §IV-A: no false negatives, ever, for any
    /// corpus and any (valid) structure; and after document filtering, no
    /// false positives either.
    #[test]
    fn search_is_exact_for_any_corpus_and_structure(
        docs in corpus_strategy(),
        total_bins in 8usize..64,
        layers in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(total_bins >= layers);
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let corpus = docs_to_corpus(&docs, store.clone());
        let config = AirphantConfig::default()
            .with_total_bins(total_bins)
            .with_manual_layers(layers)
            .with_common_fraction(0.0)
            .with_seed(seed);
        Builder::new(config).build(&corpus, "idx").unwrap();
        let searcher = Searcher::open(store, "idx").unwrap();

        // Query every vocabulary word plus some absent ones.
        for w in 0u8..32 {
            let word = format!("w{w}");
            let expected: BTreeSet<usize> = docs
                .iter()
                .enumerate()
                .filter(|(_, ws)| ws.contains(&w))
                .map(|(i, _)| i)
                .collect();
            let got = searcher.search(&word, None).unwrap();
            let got_texts: BTreeSet<String> =
                got.hits.into_iter().map(|h| h.text).collect();
            let expected_texts: BTreeSet<String> = expected
                .iter()
                .map(|&i| {
                    docs[i]
                        .iter()
                        .map(|w| format!("w{w}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            prop_assert_eq!(got_texts, expected_texts, "word {}", word);
        }
    }

    /// Superpost codec: encode/decode is the identity for any postings.
    #[test]
    fn superpost_codec_roundtrips(
        raw in prop::collection::vec((0u32..4, 0u64..1_000_000, 1u32..10_000), 0..200)
    ) {
        let list = PostingsList::from_postings(
            raw.into_iter().map(|(b, o, l)| Posting::new(b, o, l)).collect(),
        );
        let encoded = encode_superpost(&list);
        let decoded = decode_superpost(&encoded).unwrap();
        prop_assert_eq!(decoded, list);
    }

    /// Set algebra: union/intersection of postings lists behave like the
    /// corresponding BTreeSet operations.
    #[test]
    fn postings_set_algebra_matches_btreeset(
        a in prop::collection::vec(0u64..200, 0..100),
        b in prop::collection::vec(0u64..200, 0..100),
    ) {
        let pa = PostingsList::from_doc_ids(&a);
        let pb = PostingsList::from_doc_ids(&b);
        let sa: BTreeSet<u64> = a.iter().copied().collect();
        let sb: BTreeSet<u64> = b.iter().copied().collect();

        let union: Vec<u64> = pa.union(&pb).iter().map(|p| p.offset).collect();
        let expect_union: Vec<u64> = sa.union(&sb).copied().collect();
        prop_assert_eq!(union, expect_union);

        let inter: Vec<u64> = pa.intersect(&pb).iter().map(|p| p.offset).collect();
        let expect_inter: Vec<u64> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(inter, expect_inter);
    }

    /// The in-memory sketch's query is always a superset of the true
    /// postings and a subset of every layer superpost.
    #[test]
    fn sketch_query_is_sandwiched(
        words in prop::collection::vec(
            (0u16..100, prop::collection::vec(0u64..50, 1..6)), 1..60),
        layers in 1usize..4,
        seed in 0u64..500,
    ) {
        let config = SketchConfig {
            total_bins: 24,
            layers,
            common_fraction: 0.0,
        };
        let mut builder = SketchBuilder::new(config, seed);
        let mut truth: std::collections::HashMap<String, PostingsList> =
            std::collections::HashMap::new();
        for (w, docs) in &words {
            let word = format!("w{w}");
            let list = PostingsList::from_doc_ids(docs);
            truth
                .entry(word.clone())
                .or_default()
                .union_with(&list);
            builder.insert(&word, &list);
        }
        // NB: inserting the same word twice unions in the sketch as well,
        // so `truth` accumulates with union_with above.
        let sketch = builder.freeze();
        for (word, expect) in &truth {
            let got = sketch.query(word);
            for p in expect.iter() {
                prop_assert!(got.contains(p), "false negative for {}", word);
            }
            for sp in sketch.superposts_of(word) {
                for p in got.iter() {
                    prop_assert!(sp.contains(p), "query not a subset of superpost");
                }
            }
        }
    }

    /// Header encode/decode is the identity (fuzzing the config surface).
    #[test]
    fn header_roundtrips(
        total_bins in 2usize..2_000,
        layers in 1usize..6,
        n_common in 0usize..10,
        seed in 0u64..1_000,
    ) {
        prop_assume!(total_bins / layers >= 1);
        let config = SketchConfig {
            total_bins,
            layers,
            common_fraction: 0.0,
        };
        let bins_per_layer = config.bins_per_layer();
        let family = iou_sketch::HashFamily::generate(layers, bins_per_layer, seed);
        let pointers: Vec<Vec<iou_sketch::BinPointer>> = (0..layers)
            .map(|l| {
                (0..bins_per_layer)
                    .map(|b| iou_sketch::BinPointer::new(l as u32, b as u64 * 10, 10))
                    .collect()
            })
            .collect();
        let mut st = iou_sketch::encoding::StringTable::new();
        st.intern("blob-a");
        let common: Vec<(String, iou_sketch::BinPointer)> = (0..n_common)
            .map(|i| (format!("common{i}"), iou_sketch::BinPointer::new(9, i as u64, 5)))
            .collect();
        let header = HeaderBlock {
            config,
            seeds: family.seeds().to_vec(),
            string_table: st,
            pointers,
            common,
            meta: vec![("k".into(), "v".into())],
            vocab: None,
        };
        let decoded = HeaderBlock::decode(&header.encode()).unwrap();
        prop_assert_eq!(decoded, header);
    }
}
