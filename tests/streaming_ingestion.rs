//! Streaming-ingestion integration tests: live/post-flush byte equality
//! under arbitrary append/flush/search interleavings, crash recovery
//! when a flush dies mid-write, and the live index behind both serving
//! front-ends.
//!
//! Run in release with `--test-threads=8` in CI alongside the segment
//! lifecycle suite — the flusher/appender races only manifest under real
//! parallelism.

use airphant::{
    AirphantConfig, AsyncQueryServer, AsyncServerConfig, FlushPolicy, Flusher, LiveIndex, Query,
    QueryOptions, QueryServer, SearchEngine, SearchHit, SegmentManager, ServerConfig, StagedEngine,
};
use airphant_storage::{FlakyStore, InMemoryStore, ObjectStore};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn config() -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(128)
        .with_common_fraction(0.0)
}

/// Full-fidelity hit identity: blob coordinates AND text. Live and
/// post-flush results must agree on every component.
fn canonical(hits: &[SearchHit]) -> Vec<String> {
    hits.iter()
        .map(|h| format!("{}#{}+{}:{}", h.blob, h.offset, h.len, h.text))
        .collect()
}

/// The trusted oracle: a linear scan over the appended documents in
/// append order. Thanks to the verify pass, Airphant results are exact,
/// so the engine must agree with this on every term query.
fn oracle_term(docs: &[String], word: &str) -> Vec<String> {
    docs.iter()
        .filter(|d| d.split_ascii_whitespace().any(|t| t == word))
        .cloned()
        .collect()
}

fn texts(hits: &[SearchHit]) -> Vec<String> {
    hits.iter().map(|h| h.text.clone()).collect()
}

fn doc_for(tape: (u8, u16)) -> String {
    let (kind, n) = tape;
    match kind {
        0 => format!("alpha w{} shared", n % 17),
        1 => format!("beta w{} w{} shared", n % 17, (n / 16) % 17),
        _ => format!("gamma uniq{n} shared"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of append / seal / flush / search: the live
    /// index always equals the append-order oracle, and the canonical
    /// (blob, offset, len, text) form of every probe is identical before
    /// and after the final flush — i.e. streaming never changes what a
    /// query returns, only when the bytes become durable.
    #[test]
    fn live_equals_oracle_under_any_interleaving(
        ops in prop::collection::vec((0u8..10, 0u8..3, 0u16..2048), 5..60),
        max_docs in 2usize..9,
    ) {
        // Tape-decoded ops: 0..=5 append, 6 seal, 7 flush, 8..=9 search.
        #[derive(Debug, Clone)]
        enum Op {
            Append(String),
            Seal,
            Flush,
            Search(String),
        }
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|(roll, kind, n)| match roll {
                0..=5 => Op::Append(doc_for((kind, n))),
                6 => Op::Seal,
                7 => Op::Flush,
                _ => Op::Search(format!("w{}", n % 17)),
            })
            .collect();

        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let idx = LiveIndex::open(store.clone(), "idx", config())
            .unwrap()
            .with_policy(FlushPolicy { max_docs, max_bytes: u64::MAX });
        let mut docs: Vec<String> = Vec::new();

        for op in &ops {
            match op {
                Op::Append(doc) => {
                    idx.append(doc.as_str()).unwrap();
                    docs.push(doc.clone());
                }
                Op::Seal => idx.seal(),
                Op::Flush => { idx.flush().unwrap(); }
                Op::Search(word) => {
                    let r = idx.execute(&Query::term(word), &QueryOptions::new()).unwrap();
                    prop_assert_eq!(texts(&r.hits), oracle_term(&docs, word.as_str()));
                }
            }
        }

        // Probe a spread of terms live, flush everything, probe again:
        // canonical hits (coordinates included) must not move.
        let probes: Vec<Query> = (0..17)
            .map(|i| Query::term(format!("w{i}")))
            .chain([Query::term("shared"), Query::term("absent")])
            .chain([Query::all([Query::term("alpha"), Query::term("shared")])])
            .collect();
        let before: Vec<Vec<String>> = probes
            .iter()
            .map(|q| canonical(&idx.execute(q, &QueryOptions::new()).unwrap().hits))
            .collect();
        idx.flush().unwrap();
        prop_assert_eq!(idx.pending_docs(), 0);
        // Once more through a *cold* durable-only reader: the manifest
        // alone reproduces what the memtable served.
        let cold = SegmentManager::new(store, "idx").open().unwrap();
        for (q, want) in probes.iter().zip(&before) {
            let live_after = canonical(&idx.execute(q, &QueryOptions::new()).unwrap().hits);
            prop_assert_eq!(&live_after, want, "live result changed across flush");
            let durable = canonical(&cold.execute(q, &QueryOptions::new()).unwrap().hits);
            prop_assert_eq!(&durable, want, "cold durable read diverges from live");
        }
    }
}

/// Kill the flush at every possible write with `FlakyStore`: whatever
/// step dies, the memtable keeps serving every appended document, the
/// manifest stays decodable at its old generation, and a healed re-flush
/// converges to the same canonical results the live index served before
/// the crash.
#[test]
fn crash_during_flush_never_tears_the_index() {
    // k=0 kills the corpus put; higher ks kill successive index-blob
    // puts and eventually the CAS manifest publish itself. Once k covers
    // the whole write sequence the flush succeeds and the sweep is done.
    let mut crashed_at = 0u64;
    for k in 0..16u64 {
        let flaky = Arc::new(FlakyStore::new(InMemoryStore::new(), 0.0, 7));
        let store = flaky.clone() as Arc<dyn ObjectStore>;
        let idx = LiveIndex::open(store.clone(), "idx", config()).unwrap();
        // A durable generation first, so a torn manifest would be
        // distinguishable from an empty one.
        idx.append("seed doc stable").unwrap();
        idx.flush().unwrap();
        let generation_before = idx.generation();
        for i in 0..10 {
            idx.append(&format!("fresh doc{i} streaming")).unwrap();
        }
        let live_before = canonical(
            &idx.execute(&Query::term("streaming"), &QueryOptions::new())
                .unwrap()
                .hits,
        );
        assert_eq!(live_before.len(), 10, "k={k}");

        flaky.fail_puts_after(k);
        let outcome = idx.flush();
        if outcome.is_ok() {
            // The whole flush fit inside the write budget — nothing was
            // killed; verify convergence and end the sweep.
            flaky.heal_puts();
            assert_eq!(idx.pending_docs(), 0, "k={k}");
            let durable = canonical(
                &SegmentManager::new(store, "idx")
                    .open()
                    .unwrap()
                    .execute(&Query::term("streaming"), &QueryOptions::new())
                    .unwrap()
                    .hits,
            );
            assert_eq!(durable, live_before, "k={k}");
            crashed_at = k;
            break;
        }

        // The old generation is intact and decodable; no torn manifest.
        assert_eq!(idx.generation(), generation_before, "k={k}");
        let mgr = SegmentManager::new(store.clone(), "idx");
        let manifest = mgr.manifest().unwrap();
        assert_eq!(manifest.generation, generation_before, "k={k}");
        // The memtable still serves everything, coordinates unchanged.
        let live_after_crash = canonical(
            &idx.execute(&Query::term("streaming"), &QueryOptions::new())
                .unwrap()
                .hits,
        );
        assert_eq!(live_after_crash, live_before, "k={k}");
        assert_eq!(idx.pending_docs(), 10, "k={k}");

        // Heal and retry: the re-flush converges and the durable view
        // equals what the live index served all along.
        flaky.heal_puts();
        let report = idx.flush().unwrap();
        assert_eq!(report.docs, 10, "k={k}");
        assert_eq!(idx.pending_docs(), 0, "k={k}");
        assert!(idx.generation() > generation_before, "k={k}");
        let durable = canonical(
            &SegmentManager::new(store, "idx")
                .open()
                .unwrap()
                .execute(&Query::term("streaming"), &QueryOptions::new())
                .unwrap()
                .hits,
        );
        assert_eq!(durable, live_before, "k={k}");
    }
    // The sweep must actually have exercised crashes at several depths
    // before the budget covered the whole flush.
    assert!(
        crashed_at >= 3,
        "flush finished after only {crashed_at} writes"
    );
}

/// The serving story end to end: a `QueryServer` serves the live index
/// (fresh appends visible through the worker pool), then `refresh()`
/// swaps in a cold durable searcher after the flush — zero downtime,
/// identical results.
#[test]
fn query_server_serves_live_then_refreshes_to_durable() {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let idx = Arc::new(LiveIndex::open(store.clone(), "idx", config()).unwrap());
    for i in 0..30 {
        idx.append(&format!("served doc{i} w{}", i % 5)).unwrap();
    }
    let server = QueryServer::start(
        idx.clone(),
        ServerConfig::new().with_workers(4).with_queue_capacity(16),
    );
    let queries: Vec<Query> = (0..5).map(|i| Query::term(format!("w{i}"))).collect();
    let live: Vec<Vec<String>> = queries
        .iter()
        .map(|q| {
            let t = server.submit(q.clone(), QueryOptions::new()).unwrap();
            canonical(&t.wait().unwrap().hits)
        })
        .collect();
    assert_eq!(live.iter().map(Vec::len).sum::<usize>(), 30);

    idx.flush().unwrap();
    let cold = Arc::new(SegmentManager::new(store, "idx").open().unwrap());
    server.refresh(cold);
    for (q, want) in queries.iter().zip(&live) {
        let t = server.submit(q.clone(), QueryOptions::new()).unwrap();
        assert_eq!(&canonical(&t.wait().unwrap().hits), want);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.failed, 0);
}

/// The async admission-controlled core serves the live index through
/// `StagedEngine` — suspend/resume planning over the memtable's staged
/// mini-segments works exactly like over durable ones.
#[test]
fn async_core_serves_the_memtable_tail() {
    let idx = Arc::new(LiveIndex::open(Arc::new(InMemoryStore::new()), "idx", config()).unwrap());
    for i in 0..25 {
        idx.append(&format!("async doc{i} tag{}", i % 4)).unwrap();
    }
    let server = AsyncQueryServer::start(
        idx.clone() as Arc<dyn StagedEngine>,
        AsyncServerConfig::new().with_executor_threads(0),
    );
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            server
                .try_submit(
                    Query::term(format!("tag{i}")),
                    QueryOptions::new(),
                    Default::default(),
                )
                .unwrap()
        })
        .collect();
    server.drain();
    let mut total = 0;
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait().result.unwrap();
        let direct = idx
            .execute(&Query::term(format!("tag{i}")), &QueryOptions::new())
            .unwrap();
        assert_eq!(canonical(&r.hits), canonical(&direct.hits));
        total += r.hits.len();
    }
    assert_eq!(total, 25);
    let stats = server.shutdown();
    assert_eq!(stats.completed, 4);
}

/// A background flusher racing a foreground appender and searcher:
/// every appended doc stays findable throughout, and after stop()
/// everything is durable.
#[test]
fn flusher_races_appender_without_losing_docs() {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let idx = Arc::new(
        LiveIndex::open(store.clone(), "idx", config())
            .unwrap()
            .with_policy(FlushPolicy {
                max_docs: 16,
                max_bytes: u64::MAX,
            }),
    );
    let flusher = Flusher::start(idx.clone(), Duration::from_millis(1));
    for i in 0..200 {
        idx.append(&format!("raced doc{i} common")).unwrap();
        if i % 50 == 49 {
            let r = idx
                .execute(&Query::term("common"), &QueryOptions::new())
                .unwrap();
            assert_eq!(r.hits.len(), i + 1);
        }
    }
    let stats = flusher.stop();
    assert_eq!(stats.failures, 0);
    assert_eq!(idx.pending_docs(), 0);
    // Cold durable read sees all 200, in append order.
    let cold = SegmentManager::new(store, "idx").open().unwrap();
    let r = cold
        .execute(&Query::term("common"), &QueryOptions::new())
        .unwrap();
    assert_eq!(
        texts(&r.hits),
        (0..200)
            .map(|i| format!("raced doc{i} common"))
            .collect::<Vec<_>>()
    );
}
