//! Cross-format compatibility properties: a corpus indexed as a v1
//! segment and as a v2 segment must be indistinguishable to every reader.
//!
//! * Both formats decode through the same versioned-magic reader, so a v1
//!   segment under the v2-aware `Searcher` and a v2 segment under the
//!   staged planner (sync *and* async drivers) return canonical hits
//!   identical to each other and to a linear-scan oracle.
//! * The decoded header state (MHT layers, pointers, meta) is equal
//!   field-for-field, so query plans — not just results — coincide.

use airphant::{
    AirphantConfig, AsyncQueryServer, AsyncServerConfig, Builder, FormatVersion, Query,
    QueryOptions, Searcher, StagedEngine,
};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

/// A small random corpus: docs of up to 8 words from a 24-word vocab.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..24, 1..8), 1..30)
}

fn doc_text(words: &[u8]) -> String {
    words
        .iter()
        .map(|w| format!("w{w}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Build `docs` under `prefix` in the requested on-wire format and open a
/// searcher over it.
fn build_as(
    store: &Arc<dyn ObjectStore>,
    docs: &[Vec<u8>],
    prefix: &str,
    format: FormatVersion,
    seed: u64,
) -> Searcher {
    let blob = format!("c/{prefix}");
    let text = docs
        .iter()
        .map(|d| doc_text(d))
        .collect::<Vec<_>>()
        .join("\n");
    store.put(&blob, Bytes::from(text)).unwrap();
    let corpus = Corpus::new(
        store.clone(),
        vec![blob],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    );
    let config = AirphantConfig::default()
        .with_total_bins(48)
        .with_manual_layers(2)
        .with_common_fraction(0.0)
        .with_seed(seed)
        .with_format(format);
    let report = Builder::new(config).build(&corpus, prefix).unwrap();
    assert_eq!(report.format, format);
    Searcher::open(store.clone(), prefix).unwrap()
}

/// Canonical form of a result: sorted (offset, len, text) triples. Blob
/// names differ between the two indexes (different corpus blobs), so the
/// comparison is over document identity within the corpus.
fn canonical(hits: &[airphant::SearchHit]) -> Vec<(u64, u32, String)> {
    let mut v: Vec<(u64, u32, String)> = hits
        .iter()
        .map(|h| (h.offset, h.len, h.text.clone()))
        .collect();
    v.sort();
    v
}

/// Linear-scan oracle: the docs whose word set satisfies the query.
fn oracle(docs: &[Vec<u8>], query: &Query) -> Vec<(u64, u32, String)> {
    let mut out = Vec::new();
    let mut offset = 0u64;
    for d in docs {
        let text = doc_text(d);
        let len = text.len() as u32;
        let tokens: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let has = |w: &str| tokens.iter().any(|t| t == w);
        if query.matches_doc(&has, &text) {
            out.push((offset, len, text.clone()));
        }
        offset += len as u64 + 1; // newline
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// v1 and v2 segments of the same corpus (same structure, same seed)
    /// answer every term query with byte-identical canonical hits, both
    /// equal to the linear-scan oracle.
    #[test]
    fn v1_and_v2_term_queries_agree_with_oracle(
        docs in corpus_strategy(),
        seed in 0u64..500,
    ) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let v1 = build_as(&store, &docs, "idx-v1", FormatVersion::V1, seed);
        let v2 = build_as(&store, &docs, "idx-v2", FormatVersion::V2, seed);
        prop_assert_eq!(v1.format().version, 1);
        prop_assert_eq!(v2.format().version, 2);
        prop_assert!(v2.format().directory.is_some());

        for w in 0u8..26 {
            let query = Query::term(format!("w{w}"));
            let r1 = v1.execute(&query, &QueryOptions::new()).unwrap();
            let r2 = v2.execute(&query, &QueryOptions::new()).unwrap();
            let expected = oracle(&docs, &query);
            prop_assert_eq!(canonical(&r1.hits), expected.clone(), "v1 vs oracle, w{}", w);
            prop_assert_eq!(canonical(&r2.hits), expected, "v2 vs oracle, w{}", w);
            prop_assert_eq!(r1.candidates, r2.candidates,
                "same structure + seed must plan the same candidates");
        }
    }

    /// Compound queries (AND/OR) through the staged planner agree across
    /// formats and with the oracle.
    #[test]
    fn v1_and_v2_compound_queries_agree(
        docs in corpus_strategy(),
        a in 0u8..24,
        b in 0u8..24,
        seed in 0u64..500,
    ) {
        let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
        let v1 = build_as(&store, &docs, "idx-v1", FormatVersion::V1, seed);
        let v2 = build_as(&store, &docs, "idx-v2", FormatVersion::V2, seed);
        let queries = [
            Query::all([Query::term(format!("w{a}")), Query::term(format!("w{b}"))]),
            Query::any([Query::term(format!("w{a}")), Query::term(format!("w{b}"))]),
        ];
        for query in &queries {
            let r1 = v1.execute(query, &QueryOptions::new()).unwrap();
            let r2 = v2.execute(query, &QueryOptions::new()).unwrap();
            let expected = oracle(&docs, query);
            prop_assert_eq!(canonical(&r1.hits), expected.clone());
            prop_assert_eq!(canonical(&r2.hits), expected);
        }
    }
}

/// The async serving core drives the same staged planner halves, so the
/// format equivalence must extend to queries served through
/// [`AsyncQueryServer`] — v1 and v2 tickets resolve to identical
/// canonical hits, equal to the oracle.
#[test]
fn async_server_agrees_across_formats() {
    let docs: Vec<Vec<u8>> = (0..20u8)
        .map(|i| vec![i % 24, (i * 7) % 24, (i * 3 + 1) % 24])
        .collect();
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let v1 = Arc::new(build_as(&store, &docs, "idx-v1", FormatVersion::V1, 7));
    let v2 = Arc::new(build_as(&store, &docs, "idx-v2", FormatVersion::V2, 7));

    for (label, searcher) in [("v1", v1.clone()), ("v2", v2.clone())] {
        let server = AsyncQueryServer::start(
            searcher as Arc<dyn StagedEngine>,
            AsyncServerConfig::new().with_executor_threads(2),
        );
        let tickets: Vec<_> = (0u8..24)
            .map(|w| {
                server
                    .try_submit(
                        Query::term(format!("w{w}")),
                        QueryOptions::new(),
                        Default::default(),
                    )
                    .unwrap()
            })
            .collect();
        for (w, t) in tickets.into_iter().enumerate() {
            let response = t.wait();
            let result = response.result.expect("query served");
            let query = Query::term(format!("w{w}"));
            assert_eq!(
                canonical(&result.hits),
                oracle(&docs, &query),
                "{label} async w{w}"
            );
        }
        server.shutdown();
    }
}
