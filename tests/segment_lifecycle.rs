//! Segment-lifecycle integration tests: the concurrent-append race
//! regression, crash consistency of half-finished builds, and
//! refresh-under-load generation consistency.
//!
//! Run in release with `--test-threads=8` in CI — the races these guard
//! against only manifest under real parallelism.

use airphant::{
    AirphantConfig, Builder, CompactionPolicy, Compactor, Query, QueryOptions, QueryServer,
    SearchEngine, Searcher, SegmentManager, ServerConfig,
};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{FlakyStore, InMemoryStore, ObjectStore, StorageError};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

fn corpus_of(store: Arc<dyn ObjectStore>, blob: &str, lines: &[String]) -> Corpus {
    store.put(blob, Bytes::from(lines.join("\n"))).unwrap();
    Corpus::new(
        store,
        vec![blob.to_owned()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    )
}

fn config() -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(128)
        .with_common_fraction(0.0)
}

/// The PR-3 append-race regression at full width: 8 threads × 4 appends
/// through one shared store. The old `seg-{len:05}` naming plus blind
/// manifest `put` dropped segments (two appenders compute the same
/// prefix, and the later manifest write erases the earlier one); with
/// unique ids + CAS publish, all N·M segments survive and every single
/// document remains findable.
#[test]
fn concurrent_appends_lose_nothing_8x4() {
    let threads = 8usize;
    let per_thread = 4usize;
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = store.clone();
            s.spawn(move || {
                // Each thread owns its own manager handle, like separate
                // ingest nodes sharing one bucket.
                let mgr = SegmentManager::new(store.clone(), "idx");
                for i in 0..per_thread {
                    let lines: Vec<String> = (0..5)
                        .map(|d| format!("uniq{t}x{i}x{d} everybody"))
                        .collect();
                    let corpus = corpus_of(store.clone(), &format!("c/t{t}i{i}"), &lines);
                    mgr.append(&corpus, &config()).unwrap();
                }
            });
        }
    });
    let mgr = SegmentManager::new(store, "idx");
    let manifest = mgr.manifest().unwrap();
    assert_eq!(
        manifest.segments.len(),
        threads * per_thread,
        "every append must survive the race"
    );
    assert_eq!(manifest.generation, (threads * per_thread) as u64);
    let searcher = mgr.open().unwrap();
    for t in 0..threads {
        for i in 0..per_thread {
            for d in 0..5 {
                let word = format!("uniq{t}x{i}x{d}");
                assert_eq!(
                    searcher.search(&word, None).unwrap().hits.len(),
                    1,
                    "{word} lost in the race"
                );
            }
        }
    }
    assert_eq!(
        searcher.search("everybody", None).unwrap().hits.len(),
        threads * per_thread * 5
    );
}

/// Crash consistency: a build that dies between its superpost-block puts
/// and its header put must leave the manifest untouched (old generation
/// keeps serving), the half-written prefix must read as IndexNotFound,
/// and the compactor's GC must reclaim the orphan blobs.
#[test]
fn crashed_append_leaves_recoverable_orphans() {
    let flaky = Arc::new(FlakyStore::new(InMemoryStore::new(), 0.0, 9));
    let store: Arc<dyn ObjectStore> = flaky.clone();
    let mgr = SegmentManager::new(store.clone(), "idx");

    // Generation 1: a healthy segment.
    let lines: Vec<String> = (0..8).map(|i| format!("stable doc{i}")).collect();
    let corpus = corpus_of(store.clone(), "c/day0", &lines);
    mgr.append(&corpus, &config()).unwrap();
    let gen_before = mgr.generation().unwrap();
    let blobs_before = store.list("idx/").unwrap();

    // Generation 2 "crashes": corpus blob is written, then the fault arms
    // after the first index put — superpost block(s) land, the header
    // (and any manifest publish) never does.
    let lines2: Vec<String> = (0..8).map(|i| format!("doomed doc{i}")).collect();
    let corpus2 = corpus_of(store.clone(), "c/day1", &lines2);
    flaky.fail_puts_after(1);
    match mgr.append(&corpus2, &config()) {
        Err(airphant::AirphantError::Storage(StorageError::Timeout { .. })) => {}
        other => panic!("append should have crashed on the injected fault, got {other:?}"),
    }
    flaky.heal_puts();

    // The manifest never moved; the old generation still serves.
    assert_eq!(mgr.generation().unwrap(), gen_before);
    let searcher = mgr.open().unwrap();
    assert_eq!(searcher.search("stable", None).unwrap().hits.len(), 8);
    assert!(searcher.search("doomed", None).unwrap().hits.is_empty());

    // The crash left orphan superposts under an unpublished prefix, and
    // that header-less prefix reads as IndexNotFound.
    let orphans: Vec<String> = store
        .list("idx/")
        .unwrap()
        .into_iter()
        .filter(|b| !blobs_before.contains(b))
        .collect();
    assert!(!orphans.is_empty(), "the crashed build must leave debris");
    let orphan_prefix = orphans[0]
        .split("/superposts/")
        .next()
        .expect("orphans are superpost blocks")
        .to_owned();
    assert!(orphans.iter().all(|b| b.starts_with(&orphan_prefix)));
    assert!(matches!(
        Searcher::open(store.clone(), &orphan_prefix),
        Err(airphant::AirphantError::IndexNotFound { .. })
    ));

    // GC sweeps exactly the debris; the live generation is untouched and
    // a freshly reopened manager serves it.
    let compactor = Compactor::new(&mgr, config());
    let swept = compactor.sweep_orphans().unwrap();
    assert_eq!(swept, orphans.len());
    assert_eq!(store.list(&format!("{orphan_prefix}/")).unwrap().len(), 0);
    let reopened = SegmentManager::new(store, "idx").open().unwrap();
    assert_eq!(reopened.search("stable", None).unwrap().hits.len(), 8);

    // And the retried append (post-"restart") succeeds normally.
    mgr.append(&corpus2, &config()).unwrap();
    assert_eq!(
        mgr.open()
            .unwrap()
            .search("doomed", None)
            .unwrap()
            .hits
            .len(),
        8
    );
}

/// Full lifecycle under a live server: append → refresh → compact →
/// refresh → deferred GC, with queries served at every step and no
/// restart.
#[test]
fn server_survives_append_compact_gc_lifecycle() {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let mgr = SegmentManager::new(store.clone(), "idx");
    for day in 0..3 {
        let lines: Vec<String> = (0..10).map(|i| format!("base day{day}n{i}")).collect();
        let corpus = corpus_of(store.clone(), &format!("c/day{day}"), &lines);
        mgr.append(&corpus, &config()).unwrap();
    }
    let server = QueryServer::start(
        Arc::new(mgr.open().unwrap()),
        ServerConfig::new().with_workers(2),
    );
    let count = |server: &QueryServer, word: &str| {
        server
            .execute(&Query::term(word), &QueryOptions::new())
            .unwrap()
            .hits
            .len()
    };
    assert_eq!(count(&server, "base"), 30);

    // Append while serving; the server sees the new docs after refresh.
    let lines: Vec<String> = (0..10).map(|i| format!("base fresh{i}")).collect();
    let corpus = corpus_of(store.clone(), "c/day3", &lines);
    mgr.append(&corpus, &config()).unwrap();
    assert_eq!(count(&server, "base"), 30, "pre-refresh snapshot");
    server.refresh(Arc::new(mgr.open().unwrap()));
    assert_eq!(count(&server, "base"), 40);
    assert_eq!(count(&server, "fresh3"), 1);

    // Compact under deferred GC; serve across publish, refresh, and GC.
    let compactor = Compactor::new(&mgr, config()).with_policy(
        CompactionPolicy::new()
            .with_max_live_segments(1)
            .with_merge_factor(8)
            .with_deferred_gc(true),
    );
    let report = compactor.compact().unwrap();
    assert_eq!(count(&server, "base"), 40, "old generation during publish");
    server.refresh(Arc::new(mgr.open().unwrap()));
    assert_eq!(count(&server, "base"), 40, "new generation after refresh");
    compactor.gc_deferred(&report).unwrap();
    assert_eq!(count(&server, "base"), 40, "after GC");
    let stats = server.shutdown();
    assert_eq!(stats.refreshes, 2);
    assert_eq!(stats.failed, 0);
}

/// Refresh under load: queries racing a refresh must answer from either
/// the old or the new generation — exactly `old_docs` or `old_docs +
/// new_docs` hits for the shared term — never a blend of the two.
fn refresh_under_load_case(old_docs: usize, new_docs: usize, readers: usize) {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let mgr = SegmentManager::new(store.clone(), "idx");
    let lines: Vec<String> = (0..old_docs).map(|i| format!("shared old{i}")).collect();
    let corpus = corpus_of(store.clone(), "c/old", &lines);
    mgr.append(&corpus, &config()).unwrap();
    let server = Arc::new(QueryServer::start(
        Arc::new(mgr.open().unwrap()),
        ServerConfig::new()
            .with_workers(readers.max(2))
            .with_queue_capacity(64),
    ));

    let observed: Vec<usize> = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                let server = server.clone();
                s.spawn(move || {
                    let mut counts = Vec::new();
                    for _ in 0..20 {
                        let r = server
                            .execute(&Query::term("shared"), &QueryOptions::new())
                            .unwrap();
                        counts.push(r.hits.len());
                    }
                    counts
                })
            })
            .collect();
        // Concurrently: append the new generation and refresh.
        let lines: Vec<String> = (0..new_docs).map(|i| format!("shared new{i}")).collect();
        let corpus = corpus_of(store.clone(), "c/new", &lines);
        mgr.append(&corpus, &config()).unwrap();
        server.refresh(Arc::new(mgr.open().unwrap()));
        reader_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    for count in &observed {
        assert!(
            *count == old_docs || *count == old_docs + new_docs,
            "observed {count} hits mid-refresh; must be {old_docs} (old) or {} (new), never a mix",
            old_docs + new_docs
        );
    }
    // After the dust settles every query sees the new generation.
    let settled = server
        .execute(&Query::term("shared"), &QueryOptions::new())
        .unwrap();
    assert_eq!(settled.hits.len(), old_docs + new_docs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: under any corpus split and reader width, a refresh is
    /// atomic from the queries' point of view.
    #[test]
    fn refresh_under_load_is_generation_consistent(
        old_docs in 1usize..12,
        new_docs in 1usize..12,
        readers in 2usize..5,
    ) {
        refresh_under_load_case(old_docs, new_docs, readers);
    }
}

/// The engine slot also serves plain (non-segmented) engines: swapping a
/// Searcher for a SegmentedSearcher mid-flight is the upgrade path from
/// a static index to the lifecycle-managed one.
#[test]
fn refresh_upgrades_plain_searcher_to_segmented() {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let lines: Vec<String> = (0..6).map(|i| format!("word static{i}")).collect();
    let corpus = corpus_of(store.clone(), "c/static", &lines);
    Builder::new(config()).build(&corpus, "plain").unwrap();
    let server = QueryServer::start(
        Arc::new(Searcher::open(store.clone(), "plain").unwrap()),
        ServerConfig::new().with_workers(2),
    );
    assert_eq!(
        server
            .execute(&Query::term("word"), &QueryOptions::new())
            .unwrap()
            .hits
            .len(),
        6
    );
    let mgr = SegmentManager::new(store.clone(), "idx");
    mgr.append(&corpus, &config()).unwrap();
    let lines2: Vec<String> = (0..4).map(|i| format!("word extra{i}")).collect();
    let corpus2 = corpus_of(store, "c/extra", &lines2);
    mgr.append(&corpus2, &config()).unwrap();
    let segmented: Arc<dyn SearchEngine> = Arc::new(mgr.open().unwrap());
    assert_eq!(segmented.name(), "AIRPHANT-segmented");
    server.refresh(segmented);
    assert_eq!(
        server
            .execute(&Query::term("word"), &QueryOptions::new())
            .unwrap()
            .hits
            .len(),
        10
    );
}
