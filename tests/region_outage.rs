//! Region-outage sweep: with one replica of the index in each of three
//! regions, each region fails in turn in the middle of a query stream —
//! and not a single query errors. Transient faults demote the dead
//! region and reads route around it; on heal the skip credits drain,
//! the region is probed back into rotation, and routing converges back
//! to nearest-first.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, SearchHit, Searcher};
use airphant_corpus::{synth::word_token, zipf, SyntheticSpec};
use airphant_storage::{FlakyStore, InMemoryStore, ObjectStore, RegionProfile, ReplicatedStore};
use std::sync::Arc;

fn config() -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(96)
        .with_manual_layers(2)
        .with_common_fraction(0.0)
}

/// Byte-for-byte canonical form of a result set.
fn canonical(hits: &[SearchHit]) -> Vec<(String, u64, u32, String)> {
    let mut v: Vec<_> = hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
        .collect();
    v.sort();
    v
}

/// One zipf index replicated across the paper's three regions, with a
/// per-region fault injector between the router and the shared bytes.
struct Regions {
    replicated: Arc<ReplicatedStore>,
    flaky: Vec<Arc<FlakyStore<Arc<dyn ObjectStore>>>>,
}

fn build_regions() -> Regions {
    let backing: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let spec = SyntheticSpec {
        n_docs: 120,
        n_vocab: 60,
        words_per_doc: 5,
    };
    let corpus = zipf(spec, backing.clone(), "corpora/zipf", 11);
    Builder::new(config()).build(&corpus, "idx").unwrap();
    let profiles = RegionProfile::paper_spread();
    let flaky: Vec<Arc<FlakyStore<Arc<dyn ObjectStore>>>> = (0..profiles.len())
        .map(|i| Arc::new(FlakyStore::new(backing.clone(), 0.0, 100 + i as u64)))
        .collect();
    let replicated = Arc::new(ReplicatedStore::new(
        profiles
            .into_iter()
            .zip(flaky.iter().map(|f| f.clone() as Arc<dyn ObjectStore>))
            .collect(),
    ));
    Regions { replicated, flaky }
}

#[test]
fn each_region_fails_in_turn_with_zero_erroring_queries() {
    let env = build_regions();
    let searcher = Searcher::open(env.replicated.clone() as Arc<dyn ObjectStore>, "idx").unwrap();
    let queries: Vec<Query> = (0..30).map(|i| Query::term(word_token(i % 40))).collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| canonical(&searcher.execute(q, &QueryOptions::new()).unwrap().hits))
        .collect();

    let names = env.replicated.regions();
    for (r, name) in names.iter().enumerate() {
        // Outage mid-stream: the region answers nothing until healed.
        env.flaky[r].set_failure_probability(1.0);
        for (q, want) in queries.iter().zip(&expected) {
            let got = searcher
                .execute(q, &QueryOptions::new())
                .unwrap_or_else(|e| panic!("query errored during {name} outage: {e}"));
            assert_eq!(
                &canonical(&got.hits),
                want,
                "results drifted during {name} outage"
            );
        }
        if r == 0 {
            // The primary actually took traffic, so its fault was seen
            // and it is now routed around.
            assert!(
                env.replicated.is_demoted(name),
                "dead primary must be demoted"
            );
        }
        // Heal, then keep querying: the skip credits drain, the region
        // is probed back in, and routing converges.
        env.flaky[r].set_failure_probability(0.0);
        for _ in 0..200 {
            if !env.replicated.is_demoted(name) {
                break;
            }
            searcher
                .execute(&queries[0], &QueryOptions::new())
                .expect("queries keep serving while the heal drains");
        }
        assert!(
            !env.replicated.is_demoted(name),
            "{name} must converge back to healthy after the heal"
        );
    }

    let stats = env.replicated.stats();
    assert!(stats.demotions >= 1, "the primary outage must demote");
    assert!(stats.recoveries >= 1, "the heal must recover");
    assert!(
        stats.rerouted_reads > 0,
        "outage traffic must have been rerouted"
    );
    // Converged: with everyone healthy, new reads land on the primary.
    let before = env.replicated.stats().reads_by_region[0].1;
    for q in &queries {
        searcher.execute(q, &QueryOptions::new()).unwrap();
    }
    let after = env.replicated.stats().reads_by_region[0].1;
    assert!(
        after > before,
        "post-heal reads must prefer the nearest region again"
    );
}

#[test]
fn outage_mid_concurrent_stream_never_errors() {
    let env = build_regions();
    let searcher = Searcher::open(env.replicated.clone() as Arc<dyn ObjectStore>, "idx").unwrap();
    let queries: Vec<Query> = (0..20).map(|i| Query::term(word_token(i % 40))).collect();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| canonical(&searcher.execute(q, &QueryOptions::new()).unwrap().hits))
        .collect();

    // 8 reader threads sweep the stream while the main thread knocks
    // each region out and heals it. Every query must succeed with
    // byte-identical results no matter where the outage lands.
    std::thread::scope(|s| {
        for t in 0..8 {
            let searcher = &searcher;
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                for round in 0..6 {
                    for i in 0..queries.len() {
                        let k = (t + round * 3 + i) % queries.len();
                        let got = searcher
                            .execute(&queries[k], &QueryOptions::new())
                            .unwrap_or_else(|e| panic!("thread {t} errored mid-outage: {e}"));
                        assert_eq!(canonical(&got.hits), expected[k]);
                    }
                }
            });
        }
        for flaky in &env.flaky {
            flaky.set_failure_probability(1.0);
            std::thread::sleep(std::time::Duration::from_millis(5));
            flaky.set_failure_probability(0.0);
        }
    });

    // The sweep knocked out the primary at some point; if any of its
    // faults were observed they were routed around, never surfaced.
    let stats = env.replicated.stats();
    let total: u64 = stats.reads_by_region.iter().map(|(_, n)| n).sum();
    assert!(total > 0, "the stream must have read something");
}
