//! Acceptance tests for the unified `Query` API and its single-batch
//! execution planner: any AST — terms, booleans, phrases, substrings,
//! across any number of segments — completes its index-lookup phase in
//! exactly **one** `ObjectStore::get_ranges` batch.

use airphant::{AirphantConfig, Builder, Query, QueryOptions, Searcher, SegmentManager};
use airphant_corpus::{Corpus, LineSplitter, NgramTokenizer, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, PhaseKind, SimulatedCloudStore};
use std::sync::Arc;

fn sim_store(seed: u64) -> Arc<SimulatedCloudStore<InMemoryStore>> {
    Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        LatencyModel::gcs_like(),
        seed,
    ))
}

fn ngram_corpus(store: Arc<dyn ObjectStore>, blob: &str, lines: &[&str]) -> Corpus {
    store
        .put(blob, bytes::Bytes::from(lines.join("\n")))
        .unwrap();
    Corpus::new(
        store,
        vec![blob.to_owned()],
        Arc::new(LineSplitter),
        Arc::new(NgramTokenizer::new(3)),
    )
}

fn config() -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(512)
        .with_manual_layers(2)
        .with_common_fraction(0.0)
}

/// The headline acceptance criterion: `Query::all([term, term,
/// substring])` against a `SimulatedCloudStore` completes its
/// index-lookup phase in exactly one `get_ranges` batch.
#[test]
fn mixed_term_substring_query_is_one_lookup_batch() {
    let store = sim_store(42);
    {
        let s: Arc<dyn ObjectStore> = store.clone();
        let corpus = ngram_corpus(
            s,
            "c/log",
            &[
                "error disk sda1 failing",
                "error network eth0 down",
                "warn disk almost full",
                "info all good",
            ],
        );
        Builder::new(config()).build(&corpus, "idx").unwrap();
    }
    let searcher =
        Searcher::open_with_tokenizer(store.clone(), "idx", Arc::new(NgramTokenizer::new(3)))
            .unwrap();

    // Two keyword atoms (grams under the index's tokenizer) plus a
    // substring predicate: five distinct atoms in all.
    let query = Query::all([
        Query::term("err"),
        Query::term("dis"),
        Query::substring("disk s", 3),
    ]);

    // Index-lookup phase: exactly ONE concurrent batch.
    store.reset_stats();
    let (postings, trace) = searcher.execute_lookup(&query).unwrap();
    let stats = store.stats();
    assert_eq!(stats.batches, 1, "one get_ranges batch for the whole AST");
    assert_eq!(trace.round_trips(), 1);
    assert!(stats.read_requests >= 2, "batch carries all atoms' reads");
    assert!(!postings.is_empty());

    // Full execution adds exactly one more batch (the document fetch) and
    // returns the exact answer.
    store.reset_stats();
    let r = searcher.execute(&query, &QueryOptions::new()).unwrap();
    assert_eq!(store.stats().batches, 2, "lookup batch + document batch");
    assert_eq!(r.trace.round_trips(), 2);
    assert_eq!(r.trace.round_trips_of(PhaseKind::Postings), 1);
    let texts: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
    assert_eq!(texts, vec!["error disk sda1 failing"]);
}

/// The same mixed query through a 3-segment `SegmentedSearcher` still
/// uses one lookup batch: segment fan-out is coalesced, not sequential.
#[test]
fn segmented_mixed_query_is_one_lookup_batch() {
    let store = sim_store(7);
    let dyn_store: Arc<dyn ObjectStore> = store.clone();
    let mgr = SegmentManager::new(dyn_store.clone(), "seg");
    let days = [
        ["error disk sda failing", "info boot ok"],
        ["error disk sdb failing", "warn temp high"],
        ["error network down", "info disk healthy"],
    ];
    for (i, lines) in days.iter().enumerate() {
        let corpus = ngram_corpus(dyn_store.clone(), &format!("c/day{i}"), lines);
        mgr.append(&corpus, &config()).unwrap();
    }
    let searcher = mgr
        .open_with_tokenizer(Arc::new(NgramTokenizer::new(3)))
        .unwrap();
    assert_eq!(searcher.segment_count(), 3);

    let query = Query::all([
        Query::term("err"),
        Query::term("dis"),
        Query::substring("failing", 3),
    ]);
    store.reset_stats();
    let (_, trace) = searcher.execute_lookup(&query).unwrap();
    assert_eq!(
        store.stats().batches,
        1,
        "3 segments x 5 atoms x 2 layers coalesce into one batch"
    );
    assert_eq!(trace.round_trips(), 1);

    store.reset_stats();
    let r = searcher.execute(&query, &QueryOptions::new()).unwrap();
    assert_eq!(store.stats().batches, 2);
    let texts: Vec<&str> = r.hits.iter().map(|h| h.text.as_str()).collect();
    assert_eq!(
        texts,
        vec!["error disk sda failing", "error disk sdb failing"],
        "hits keep segment append order"
    );
}

/// Compound-query latency stays in the ballpark of single-term latency:
/// the wait component is one round trip either way, not multiplied by
/// the term count.
#[test]
fn compound_lookup_wait_is_not_multiplied_by_term_count() {
    let store = sim_store(3);
    {
        let s: Arc<dyn ObjectStore> = store.clone();
        let lines: Vec<String> = (0..60)
            .map(|i| format!("alpha{} beta{} gamma{}", i % 5, i % 7, i % 11))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        s.put("c/b", bytes::Bytes::from(refs.join("\n"))).unwrap();
        let corpus = Corpus::new(
            s,
            vec!["c/b".into()],
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        );
        Builder::new(
            AirphantConfig::default()
                .with_total_bins(256)
                .with_manual_layers(3)
                .with_common_fraction(0.0),
        )
        .build(&corpus, "idx")
        .unwrap();
    }
    let searcher = Searcher::open(store, "idx").unwrap();

    let mut single = 0.0;
    let mut triple = 0.0;
    for i in 0..20 {
        let (_, t1) = searcher
            .execute_lookup(&Query::term(format!("alpha{}", i % 5)))
            .unwrap();
        single += t1.wait().as_millis_f64();
        let q3 = Query::all([
            Query::term(format!("alpha{}", i % 5)),
            Query::term(format!("beta{}", i % 7)),
            Query::term(format!("gamma{}", i % 11)),
        ]);
        let (_, t3) = searcher.execute_lookup(&q3).unwrap();
        assert_eq!(t3.round_trips(), 1);
        triple += t3.wait().as_millis_f64();
    }
    // One batch either way: the 3-term wait is the max over 9 concurrent
    // draws instead of 3 — slightly higher, never ~3x.
    assert!(
        triple < 2.0 * single,
        "3-term wait {triple:.1}ms should stay near single-term {single:.1}ms"
    );
    assert!(triple >= single * 0.8, "sanity: both are one round trip");
}

/// The fluent builder chain and the explicit constructors produce the
/// same results through `execute` (the only query surface since the
/// pre-0.3 `search_boolean`/`search_substring` shims were removed).
#[test]
fn builder_chain_agrees_with_constructors() {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let corpus = ngram_corpus(
        store.clone(),
        "c/b",
        &[
            "block blk_123 received",
            "packet drop",
            "block blk_999 lost",
        ],
    );
    Builder::new(config()).build(&corpus, "idx").unwrap();
    let searcher =
        Searcher::open_with_tokenizer(store, "idx", Arc::new(NgramTokenizer::new(3))).unwrap();

    let explicit = searcher
        .execute(
            &Query::any([Query::substring("blk_123", 3), Query::substring("pac", 3)]),
            &QueryOptions::new(),
        )
        .unwrap();
    let fluent = Query::substring("blk_123", 3).or(Query::substring("pac", 3));
    let chained = searcher.execute(&fluent, &QueryOptions::new()).unwrap();
    assert_eq!(explicit.hits.len(), chained.hits.len());
    assert_eq!(explicit.candidates, chained.candidates);
    assert_eq!(explicit.hits.len(), 2);
}
