//! Online-resharding equivalence: splitting a sharded index (N -> 2N)
//! and merging it back (2N -> N) must leave every query's result set
//! byte-for-byte unchanged — for random query ASTs over a zipf corpus,
//! sequentially and from 8 concurrent threads — while searchers opened
//! *before* the reshard keep serving the superseded generation until
//! it is garbage-collected.

use airphant::{AirphantConfig, Query, QueryOptions, SearchHit, ShardRouter};
use airphant_corpus::{synth::word_token, zipf, LineSplitter, SyntheticSpec, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore};
use proptest::prelude::*;
use std::sync::Arc;

fn config(seed: u64) -> AirphantConfig {
    AirphantConfig::default()
        .with_total_bins(96)
        .with_manual_layers(2)
        .with_common_fraction(0.0)
        .with_seed(seed)
}

/// Byte-for-byte canonical form of a result set: every field of every
/// hit, in stable doc-id order.
fn canonical(hits: &[SearchHit]) -> Vec<(String, u64, u32, String)> {
    let mut v: Vec<_> = hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
        .collect();
    v.sort();
    v
}

/// Random AST over the zipf vocabulary from an opcode tape (the
/// stack-machine idiom of `query_properties.rs`): 0 pushes a term,
/// 1 folds AND, 2 folds OR. Word ranks run past the vocabulary so
/// absent words appear too.
fn ast_from_tape(tape: &[(u8, u16)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, w) in tape {
        match op {
            1 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::all([a, b]));
            }
            2 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::any([a, b]));
            }
            _ => stack.push(Query::term(word_token(w as u64))),
        }
    }
    if stack.len() == 1 {
        stack.pop().unwrap()
    } else {
        Query::any(stack)
    }
}

/// A zipf corpus sharded `n` ways under `idx` in a fresh store.
fn build_sharded(
    n: usize,
    n_docs: u64,
    corpus_seed: u64,
    build_seed: u64,
) -> (Arc<dyn ObjectStore>, ShardRouter) {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let spec = SyntheticSpec {
        n_docs,
        n_vocab: 60,
        words_per_doc: 5,
    };
    let corpus = zipf(spec, store.clone(), "corpora/zipf", corpus_seed);
    let router = ShardRouter::create(store.clone(), "idx", n).unwrap();
    router.append(&corpus, &config(build_seed)).unwrap();
    (store, router)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any AST, N ∈ {2, 4}: split then merge, byte-for-byte identical
    /// results at every generation, with the pre-split searcher still
    /// serving the old layout after the cutover.
    #[test]
    fn split_and_merge_preserve_results_for_any_ast(
        n_idx in 0usize..2,
        n_docs in 40u64..120,
        corpus_seed in 0u64..1_000,
        build_seed in 0u64..1_000,
        tapes in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u16..70), 1..10),
            1..5,
        ),
    ) {
        let n = [2usize, 4][n_idx];
        let (store, router) = build_sharded(n, n_docs, corpus_seed, build_seed);
        let queries: Vec<Query> = tapes.iter().map(|t| ast_from_tape(t)).collect();
        let pre_split = router.open_searcher().unwrap();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| canonical(&pre_split.execute(q, &QueryOptions::new()).unwrap().hits))
            .collect();

        let (split_router, old) = router
            .split(
                &config(build_seed),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        prop_assert_eq!(split_router.shards(), 2 * n);
        prop_assert_eq!(split_router.generation(), old.generation + 1);
        let after_split = split_router.open_searcher().unwrap();
        for (q, want) in queries.iter().zip(&expected) {
            let got = canonical(&after_split.execute(q, &QueryOptions::new()).unwrap().hits);
            prop_assert_eq!(&got, want, "split {} -> {}: {:?}", n, 2 * n, q);
            // The pre-split snapshot keeps serving the old generation.
            let stale = canonical(&pre_split.execute(q, &QueryOptions::new()).unwrap().hits);
            prop_assert_eq!(&stale, want, "old generation after split: {:?}", q);
        }
        prop_assert_eq!(pre_split.layout_generation(), old.generation);

        let (merged_router, split_layout) = split_router
            .merge(
                &config(build_seed),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        prop_assert_eq!(merged_router.shards(), n);
        prop_assert_eq!(merged_router.generation(), split_layout.generation + 1);
        let after_merge = merged_router.open_searcher().unwrap();
        for (q, want) in queries.iter().zip(&expected) {
            let got = canonical(&after_merge.execute(q, &QueryOptions::new()).unwrap().hits);
            prop_assert_eq!(&got, want, "merge {} -> {}: {:?}", 2 * n, n, q);
        }

        // Reopening from the store adopts the published (merged) layout.
        let reopened = ShardRouter::open(store, "idx").unwrap();
        prop_assert_eq!(reopened.generation(), merged_router.generation());
        prop_assert_eq!(reopened.shards(), n);
    }

    /// Queries fired from 8 concurrent threads against the post-split
    /// searcher — interleaved with threads still reading the pre-split
    /// snapshot — all return exactly the sequential answers.
    #[test]
    fn concurrent_queries_across_generations_match_sequential(
        corpus_seed in 0u64..1_000,
        tapes in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u16..70), 1..8),
            4..9,
        ),
    ) {
        let (_store, router) = build_sharded(2, 96, corpus_seed, 17);
        let queries: Vec<Query> = tapes.iter().map(|t| ast_from_tape(t)).collect();
        let pre_split = router.open_searcher().unwrap();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| canonical(&pre_split.execute(q, &QueryOptions::new()).unwrap().hits))
            .collect();
        let (split_router, _old) = router
            .split(
                &config(17),
                Arc::new(LineSplitter),
                Arc::new(WhitespaceTokenizer),
            )
            .unwrap();
        let after_split = split_router.open_searcher().unwrap();

        let threads = 8;
        let results: Vec<Vec<_>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let queries = &queries;
                    // Even threads read the new generation, odd threads
                    // the superseded one — both must agree everywhere.
                    let searcher = if t % 2 == 0 { &after_split } else { &pre_split };
                    s.spawn(move || {
                        (0..queries.len())
                            .map(|i| {
                                let q = &queries[(t + i) % queries.len()];
                                canonical(
                                    &searcher.execute(q, &QueryOptions::new()).unwrap().hits,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, per_thread) in results.iter().enumerate() {
            for (i, got) in per_thread.iter().enumerate() {
                let want = &expected[(t + i) % queries.len()];
                prop_assert_eq!(got, want, "thread {}, query {}", t, i);
            }
        }
    }
}

/// Non-property regression: the generation lifecycle on a fixed corpus —
/// split, merge, then GC of a superseded generation, with the live one
/// refusing to self-destruct.
#[test]
fn generation_lifecycle_and_gc() {
    let (_store, router) = build_sharded(2, 80, 3, 3);
    let query = Query::term(word_token(1));
    let baseline = canonical(
        &router
            .open_searcher()
            .unwrap()
            .execute(&query, &QueryOptions::new())
            .unwrap()
            .hits,
    );
    assert!(!baseline.is_empty(), "rank-1 zipf word must occur");

    let (split_router, gen1) = router
        .split(
            &config(3),
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
        .unwrap();
    let (merged_router, gen2) = split_router
        .merge(
            &config(3),
            Arc::new(LineSplitter),
            Arc::new(WhitespaceTokenizer),
        )
        .unwrap();
    assert_eq!((gen1.generation, gen2.generation), (1, 2));
    assert_eq!(merged_router.generation(), 3);

    // Reclaim both superseded generations; the live one still serves.
    assert!(merged_router.gc_generation(&gen1).unwrap() > 0);
    assert!(merged_router.gc_generation(&gen2).unwrap() > 0);
    let live = canonical(
        &merged_router
            .open_searcher()
            .unwrap()
            .execute(&query, &QueryOptions::new())
            .unwrap()
            .hits,
    );
    assert_eq!(live, baseline);
    // GC of the live generation is a typed refusal, not data loss.
    assert!(merged_router.gc_generation(merged_router.layout()).is_err());
    assert_eq!(
        canonical(
            &merged_router
                .open_searcher()
                .unwrap()
                .execute(&query, &QueryOptions::new())
                .unwrap()
                .hits,
        ),
        baseline
    );
}
