//! Concurrent serving: N threads over one shared `Arc<Searcher>` and one
//! shared byte-budgeted cache must agree byte-for-byte with sequential
//! execution; randomly composed Query ASTs executed concurrently must
//! match the linear-scan oracle; the PR-1 single-batch invariant
//! (`round_trips_of(Postings) == 1`) must survive the worker pool; and
//! seeded transient failures under parallel load must all be retried to
//! success with exact counters.

use airphant::{
    AirphantConfig, Builder, Query, QueryOptions, QueryServer, SearchResult, Searcher, ServerConfig,
};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{
    CachedStore, FlakyStore, InMemoryStore, LatencyModel, ObjectStore, PhaseKind, QueryTrace,
    RetryingStore, SimDuration, SimulatedCloudStore,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

fn corpus_lines(n: usize) -> Vec<String> {
    // Zipf-flavoured synthetic: low word indices appear in many documents.
    (0..n)
        .map(|i| format!("w{} w{} w{} tail{}", i % 7, i % 13, (i * 31) % 30, i))
        .collect()
}

fn build_index(store: Arc<dyn ObjectStore>, lines: &[String], prefix: &str) {
    store
        .put("c/blob-0", bytes::Bytes::from(lines.join("\n")))
        .unwrap();
    let corpus = Corpus::new(
        store.clone(),
        vec!["c/blob-0".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    );
    Builder::new(
        AirphantConfig::default()
            .with_total_bins(96)
            .with_manual_layers(2)
            .with_common_fraction(0.0)
            .with_seed(11),
    )
    .build(&corpus, prefix)
    .unwrap();
}

/// Stable byte-level identity of a result: every field a caller can see.
fn fingerprint(r: &SearchResult) -> Vec<(String, u64, u32, String)> {
    r.hits
        .iter()
        .map(|h| (h.blob.clone(), h.offset, h.len, h.text.clone()))
        .collect()
}

#[test]
fn parallel_threads_agree_byte_for_byte_with_sequential() {
    let sim = Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        LatencyModel::gcs_like(),
        77,
    ));
    let lines = corpus_lines(120);
    build_index(sim.clone() as Arc<dyn ObjectStore>, &lines, "idx");
    let cache = Arc::new(CachedStore::new(sim as Arc<dyn ObjectStore>, 256 << 10));
    let searcher = Arc::new(Searcher::open(cache.clone() as Arc<dyn ObjectStore>, "idx").unwrap());

    let queries: Vec<Query> = (0..40)
        .map(|i| match i % 3 {
            0 => Query::term(format!("w{}", i % 13)),
            1 => Query::all([
                Query::term(format!("w{}", i % 7)),
                Query::term(format!("w{}", i % 13)),
            ]),
            _ => Query::any([
                Query::term(format!("tail{i}")),
                Query::term(format!("w{}", i % 30)),
            ]),
        })
        .collect();

    // Sequential reference on the same shared stack (cache warm-up
    // included: hits change latency, never bytes).
    let reference: Vec<_> = queries
        .iter()
        .map(|q| fingerprint(&searcher.execute(q, &QueryOptions::new()).unwrap()))
        .collect();

    // 8 threads × the full workload, all through the same Arc<Searcher>.
    std::thread::scope(|s| {
        for _ in 0..8 {
            let searcher = searcher.clone();
            let queries = &queries;
            let reference = &reference;
            s.spawn(move || {
                for (q, expected) in queries.iter().zip(reference) {
                    let got = fingerprint(&searcher.execute(q, &QueryOptions::new()).unwrap());
                    assert_eq!(&got, expected, "diverged on {q:?}");
                }
            });
        }
    });
    // The shared cache saw all threads; accounting never desyncs.
    let (h, m) = cache.hit_stats();
    assert!(h > 0 && m > 0);
}

#[test]
fn retried_transient_failures_under_parallel_search_are_exact() {
    // Full engine path over a flaky backend: every parallel search must
    // succeed (retries absorb the injected faults) and the fault/retry
    // counters must agree event-for-event.
    let plain = Arc::new(InMemoryStore::new());
    let lines = corpus_lines(80);
    build_index(plain.clone() as Arc<dyn ObjectStore>, &lines, "idx");
    let flaky = FlakyStore::new(plain as Arc<dyn ObjectStore>, 0.2, 4242);
    let store = Arc::new(RetryingStore::new(flaky, 32, SimDuration::from_millis(5)));
    let searcher = Arc::new(Searcher::open(store.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
    std::thread::scope(|s| {
        for t in 0..6 {
            let searcher = searcher.clone();
            s.spawn(move || {
                for i in 0..40 {
                    let word = format!("w{}", (t * 40 + i) % 13);
                    let r = searcher.search(&word, None).unwrap();
                    assert!(!r.hits.is_empty(), "{word} must resolve despite faults");
                }
            });
        }
    });
    assert!(store.retries() > 0, "faults were actually injected");
    assert_eq!(
        store.retries(),
        store.inner().injected_failures(),
        "every injected failure was retried exactly once (no lost updates)"
    );
}

#[test]
fn query_server_preserves_single_batch_round_trips() {
    // PR-1 invariant through the pool: every query served by a
    // QueryServer still pays exactly one dependent superpost batch.
    let sim = Arc::new(SimulatedCloudStore::new(
        InMemoryStore::new(),
        LatencyModel::gcs_like(),
        3,
    ));
    let lines = corpus_lines(100);
    build_index(sim.clone() as Arc<dyn ObjectStore>, &lines, "idx");
    let cache = Arc::new(CachedStore::new(sim as Arc<dyn ObjectStore>, 512 << 10));
    let searcher = Arc::new(Searcher::open(cache.clone() as Arc<dyn ObjectStore>, "idx").unwrap());
    let server = QueryServer::start(
        searcher,
        ServerConfig::new().with_workers(6).with_queue_capacity(24),
    );
    let queries: Vec<Query> = (0..60)
        .map(|i| match i % 3 {
            0 => Query::term(format!("w{}", i % 13)),
            1 => Query::all([
                Query::term(format!("w{}", i % 7)),
                Query::term(format!("w{}", i % 13)),
                Query::term(format!("w{}", (i * 31) % 30)),
            ]),
            _ => Query::any([
                Query::term(format!("w{}", i % 13)),
                Query::term(format!("w{}", (i + 1) % 13)),
            ]),
        })
        .collect();
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone(), QueryOptions::new()).unwrap())
        .collect();
    for (q, t) in queries.iter().zip(tickets) {
        let r = t.wait().unwrap();
        assert_eq!(
            r.trace.round_trips_of(PhaseKind::Postings),
            1,
            "pooled execution broke the single-batch lookup for {q:?}"
        );
        assert!(
            r.trace.round_trips() <= 2,
            "lookup batch + document batch at most"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 60);
    assert_eq!(stats.failed + stats.timed_out + stats.rejected, 0);
}

#[test]
fn simulated_qps_scales_with_worker_count() {
    // Same workload, 1 vs 4 workers: the closed-loop simulated QPS must
    // improve with the pool (the read path has no serial bottleneck).
    let run = |workers: usize| {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::gcs_like(),
            9,
        ));
        let lines = corpus_lines(100);
        build_index(sim.clone() as Arc<dyn ObjectStore>, &lines, "idx");
        let searcher = Arc::new(Searcher::open(sim as Arc<dyn ObjectStore>, "idx").unwrap());
        let server = QueryServer::start(
            searcher,
            ServerConfig::new()
                .with_workers(workers)
                .with_queue_capacity(32),
        );
        let tickets: Vec<_> = (0..80)
            .map(|i| {
                server
                    .submit(Query::term(format!("w{}", i % 13)), QueryOptions::new())
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        server.shutdown().qps_sim
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four > 2.0 * one,
        "4 workers ({four:.1} qps) must scale past 1 worker ({one:.1} qps)"
    );
}

// ---------------------------------------------------------------------
// Property test: random ASTs, executed concurrently through one shared
// searcher + cache, against the linear-scan oracle.

struct SharedIndex {
    searcher: Arc<Searcher>,
    docs: Vec<String>,
}

fn shared_index() -> &'static SharedIndex {
    static SHARED: OnceLock<SharedIndex> = OnceLock::new();
    SHARED.get_or_init(|| {
        let sim = Arc::new(SimulatedCloudStore::new(
            InMemoryStore::new(),
            LatencyModel::instantaneous(),
            1,
        ));
        let docs: Vec<String> = (0..90)
            .map(|i| {
                format!(
                    "w{} w{} w{}",
                    i % 30,
                    (i * 7) % 30,
                    (i * 13 + 5) % 34 // some indices past the vocab: absent words
                )
            })
            .collect();
        build_index(sim.clone() as Arc<dyn ObjectStore>, &docs, "pidx");
        let cache = Arc::new(CachedStore::new(sim as Arc<dyn ObjectStore>, 1 << 20));
        let searcher = Arc::new(Searcher::open(cache as Arc<dyn ObjectStore>, "pidx").unwrap());
        SharedIndex { searcher, docs }
    })
}

/// Random AST from an opcode tape, stack-machine style (same scheme as
/// `query_properties.rs`): 0 pushes a term, 1 folds AND, 2 folds OR.
fn ast_from_tape(tape: &[(u8, u8)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, w) in tape {
        match op {
            1 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::all([a, b]));
            }
            2 if stack.len() >= 2 => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(Query::any([a, b]));
            }
            _ => stack.push(Query::term(format!("w{w}"))),
        }
    }
    if stack.len() == 1 {
        stack.pop().unwrap()
    } else {
        Query::any(stack)
    }
}

fn oracle(docs: &[String], query: &Query) -> BTreeSet<String> {
    docs.iter()
        .filter(|text| {
            let has = |w: &str| text.split_ascii_whitespace().any(|t| t == w);
            query.matches_doc(&has, text)
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn concurrent_random_asts_match_linear_scan(
        tapes in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..36), 1..10),
            2..5,
        ),
    ) {
        let shared = shared_index();
        let queries: Vec<Query> = tapes.iter().map(|t| ast_from_tape(t)).collect();
        // Run all of this case's queries concurrently over the shared
        // searcher; each thread checks its own result against the oracle.
        let results: Vec<(Query, BTreeSet<String>, QueryTrace)> = std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .into_iter()
                .map(|q| {
                    let searcher = shared.searcher.clone();
                    s.spawn(move || {
                        let r = searcher.execute(&q, &QueryOptions::new()).unwrap();
                        let got: BTreeSet<String> =
                            r.hits.into_iter().map(|h| h.text).collect();
                        (q, got, r.trace)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (q, got, trace) in results {
            let expected = oracle(&shared.docs, &q);
            prop_assert_eq!(&got, &expected, "query {:?} diverged from oracle", &q);
            let atoms = q.atoms().unwrap();
            if !atoms.is_empty() {
                prop_assert_eq!(
                    trace.round_trips_of(PhaseKind::Postings),
                    1,
                    "lookup must stay one batch under concurrency"
                );
            }
        }
    }
}
