//! Serverless-style deployment (§III-A): many corpora persisted in one
//! bucket, ephemeral Searchers spun up on demand per request — "the
//! deployment manager can quickly scale up or down based on the current
//! demand across different corpuses".
//!
//! This example builds three differently-shaped corpora, then simulates a
//! function-as-a-service request loop: each request opens a fresh Searcher
//! (paying only the small header download), answers one query, and exits.
//!
//! ```sh
//! cargo run --release --example serverless_multi_corpus
//! ```

use airphant::{AirphantConfig, Builder, Searcher};
use airphant_corpus::{cranfield_like, spark_like, windows_like, LogCorpusSpec, QueryWorkload};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inner = Arc::new(InMemoryStore::new());

    // Three tenants with different corpora share the bucket.
    let tenants = ["cranfield", "spark", "windows"];
    let mut profiles = Vec::new();
    for name in tenants {
        let corpus = match name {
            "cranfield" => cranfield_like(1, inner.clone(), "corpora/cranfield"),
            "spark" => spark_like(
                LogCorpusSpec::new(10_000, 2),
                inner.clone(),
                "corpora/spark",
            ),
            _ => windows_like(
                LogCorpusSpec::new(10_000, 3),
                inner.clone(),
                "corpora/windows",
            ),
        };
        let profile = corpus.profile()?;
        let bins = if name == "cranfield" { 20_000 } else { 500 };
        let report = Builder::new(AirphantConfig::default().with_total_bins(bins))
            .build_with_profile(&corpus, &format!("index/{name}"), profile.clone())?;
        println!(
            "tenant {name:<10} {} docs, {} terms -> L*={}, index {} KB",
            profile.n_docs,
            profile.n_terms,
            report.optimal_layers,
            report.index_bytes() / 1024
        );
        profiles.push((name, profile));
    }

    // FaaS request loop: every request cold-starts a Searcher.
    let cloud: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        inner,
        LatencyModel::gcs_like(),
        11,
    ));
    println!(
        "\n{:<10} {:>14} {:>12} {:>6}",
        "tenant", "init_ms", "query_ms", "hits"
    );
    for round in 0..3 {
        for (name, profile) in &profiles {
            let searcher = Searcher::open(cloud.clone(), &format!("index/{name}"))?;
            let init_ms = searcher.init_trace().total().as_millis_f64();
            let word = QueryWorkload::uniform(profile, 1, 100 + round).words()[0].clone();
            let result = searcher.search(&word, Some(10))?;
            println!(
                "{:<10} {:>12.1}ms {:>10.1}ms {:>6}",
                name,
                init_ms,
                result.latency().as_millis_f64(),
                result.hits.len()
            );
            // The cold-start cost is one header fetch: a few dozen ms and a
            // few hundred KB at most — that is what makes the serverless
            // deployment viable.
            assert!(init_ms < 500.0, "cold start should be one small fetch");
        }
    }
    Ok(())
}
