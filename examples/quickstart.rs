//! Quickstart: index a handful of documents and search them — the
//! reproduction of the paper's Figure 1 user interface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use airphant::{AirphantConfig, Builder, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore};
use bytes::Bytes;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Cloud storage": an in-memory object store for the demo. Swap in
    // LocalFsStore (or a SimulatedCloudStore wrapper) without touching the
    // rest of the code.
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());

    // Index two documents, like the paper's Figure 1:
    //   Document doc1 = new Document("hello world");
    //   Document doc2 = new Document("hello airphant");
    store.put(
        "corpus/docs",
        Bytes::from_static(b"hello world\nhello airphant"),
    )?;
    let corpus = Corpus::new(
        store.clone(),
        vec!["corpus/docs".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    );

    // Builder: profile -> optimize (Algorithm 1) -> superposts -> header.
    let config = AirphantConfig::default().with_total_bins(256);
    let report = Builder::new(config).build(&corpus, "index/quickstart")?;
    println!(
        "built IoU Sketch: {} layer(s), {} words, {} docs, {} bytes on storage",
        report.layers,
        report.words,
        report.docs,
        report.index_bytes()
    );

    // Searcher: download the header once, then query.
    let searcher = Searcher::open(store, "index/quickstart")?;
    println!(
        "searcher initialized, MHT footprint ~ {} bytes",
        searcher.memory_bytes()
    );

    // index.search("airphant")
    let result = searcher.search("airphant", None)?;
    println!(
        "search(\"airphant\"): {} hit(s) in {} simulated",
        result.hits.len(),
        result.latency()
    );
    for hit in &result.hits {
        println!(
            "  {}@{}..{}  {:?}",
            hit.blob,
            hit.offset,
            hit.offset + hit.len as u64,
            hit.text
        );
    }
    assert_eq!(result.hits.len(), 1);
    assert_eq!(result.hits[0].text, "hello airphant");

    let both = searcher.search("hello", None)?;
    println!("search(\"hello\"): {} hit(s)", both.hits.len());
    assert_eq!(both.hits.len(), 2);
    Ok(())
}
