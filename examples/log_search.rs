//! Log search at (scaled) production shape: build an index over an
//! HDFS-like log corpus, put it behind a simulated GCS link, and compare
//! Airphant's single-batch lookups against the SQLite-style B+tree — the
//! workload the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example log_search
//! ```

use airphant::{AirphantConfig, Builder, SearchEngine, Searcher};
use airphant_baselines::{BTreeBuilder, BTreeEngine};
use airphant_corpus::{hdfs_like, LogCorpusSpec, QueryWorkload};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate 20k HDFS-like log lines (Table II shape: terms ~ docs/3.5).
    let inner = Arc::new(InMemoryStore::new());
    let corpus = hdfs_like(
        LogCorpusSpec::new(20_000, 42),
        inner.clone(),
        "corpora/hdfs",
    );
    let profile = corpus.profile()?;
    println!(
        "corpus: {} docs, {} terms, {} words",
        profile.n_docs, profile.n_terms, profile.n_words
    );

    // Build both indexes against the raw store (builds are offline).
    let report = Builder::new(AirphantConfig::default().with_total_bins(500)).build_with_profile(
        &corpus,
        "index/airphant",
        profile.clone(),
    )?;
    println!(
        "airphant: L* = {} layers, expected FP = {:.3}/query, {} KB on storage",
        report.optimal_layers,
        report.expected_fp.unwrap_or(f64::NAN),
        report.index_bytes() / 1024
    );
    BTreeBuilder::build(&corpus, "index/sqlite")?;

    // Query through a simulated cloud link (Figure 2's latency curve).
    let cloud: Arc<dyn ObjectStore> =
        Arc::new(SimulatedCloudStore::new(inner, LatencyModel::gcs_like(), 7));
    let airphant = Searcher::open(cloud.clone(), "index/airphant")?;
    let sqlite = BTreeEngine::open(cloud, "index/sqlite")?;

    let workload = QueryWorkload::uniform(&profile, 20, 3);
    let mut a_total = 0.0;
    let mut s_total = 0.0;
    println!("\n{:<32} {:>12} {:>12}", "query", "airphant", "sqlite");
    for word in workload.iter() {
        let a = airphant.search(word, Some(10))?;
        let s = sqlite.search(word, Some(10))?;
        assert_eq!(a.hits.len(), s.hits.len(), "engines must agree on {word}");
        a_total += a.latency().as_millis_f64();
        s_total += s.latency().as_millis_f64();
        println!(
            "{:<32} {:>10.1}ms {:>10.1}ms",
            word,
            a.latency().as_millis_f64(),
            s.latency().as_millis_f64()
        );
    }
    let n = workload.len() as f64;
    println!(
        "\nmean: airphant {:.1} ms vs sqlite {:.1} ms  ({:.2}x)",
        a_total / n,
        s_total / n,
        s_total / a_total
    );
    Ok(())
}
