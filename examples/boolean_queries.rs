//! Compound queries through the unified `Query` AST (§IV-F): the engine
//! distributes its query function over the predicate — `Q(⋁⋀ w) = ⋃⋂ Q(w)`
//! — the planner fetches every term's superposts in ONE concurrent batch,
//! and the document filter restores exactness.
//!
//! ```sh
//! cargo run --example boolean_queries
//! ```

use airphant::{AirphantConfig, Builder, Query, QueryOptions, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore, PhaseKind};
use bytes::Bytes;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let log = b"ERROR disk sda1 failing\n\
INFO backup completed\n\
ERROR network eth0 down\n\
WARN disk sda2 nearly full\n\
ERROR disk sdb1 failing network degraded\n\
INFO disk sda1 recovered";
    store.put("corpus/log", Bytes::from_static(log))?;
    let corpus = Corpus::new(
        store.clone(),
        vec!["corpus/log".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    );
    Builder::new(AirphantConfig::default().with_total_bins(128)).build(&corpus, "index/log")?;
    let searcher = Searcher::open(store, "index/log")?;
    let opts = QueryOptions::new();

    // ERROR AND disk
    let q = Query::all([Query::term("ERROR"), Query::term("disk")]);
    let r = searcher.execute(&q, &opts)?;
    println!("ERROR AND disk -> {} hits:", r.hits.len());
    for h in &r.hits {
        println!("  {}", h.text);
    }
    assert_eq!(r.hits.len(), 2);

    // (ERROR AND network) OR WARN
    let q = Query::any([
        Query::all([Query::term("ERROR"), Query::term("network")]),
        Query::term("WARN"),
    ]);
    let r = searcher.execute(&q, &opts)?;
    println!("(ERROR AND network) OR WARN -> {} hits:", r.hits.len());
    for h in &r.hits {
        println!("  {}", h.text);
    }
    assert_eq!(r.hits.len(), 3);

    // However many terms the AST mentions, the planner resolved all their
    // superposts in a single concurrent batch: one lookup round trip (plus
    // one for the documents), and the final filter guarantees zero false
    // positives in what you see above.
    assert_eq!(r.trace.round_trips_of(PhaseKind::Postings), 1);
    println!(
        "\nquery trace: {} round trip(s), {} requests, {} bytes, {} simulated",
        r.trace.round_trips(),
        r.trace.requests(),
        r.trace.bytes(),
        r.trace.total()
    );
    Ok(())
}
