//! Boolean queries over the IoU Sketch (§IV-F): the engine distributes its
//! query function over the predicate — `Q(⋁⋀ w) = ⋃⋂ Q(w)` — and the
//! document filter restores exactness.
//!
//! ```sh
//! cargo run --example boolean_queries
//! ```

use airphant::{AirphantConfig, BoolQuery, Builder, Searcher};
use airphant_corpus::{Corpus, LineSplitter, WhitespaceTokenizer};
use airphant_storage::{InMemoryStore, ObjectStore};
use bytes::Bytes;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store: Arc<dyn ObjectStore> = Arc::new(InMemoryStore::new());
    let log = b"ERROR disk sda1 failing\n\
INFO backup completed\n\
ERROR network eth0 down\n\
WARN disk sda2 nearly full\n\
ERROR disk sdb1 failing network degraded\n\
INFO disk sda1 recovered";
    store.put("corpus/log", Bytes::from_static(log))?;
    let corpus = Corpus::new(
        store.clone(),
        vec!["corpus/log".into()],
        Arc::new(LineSplitter),
        Arc::new(WhitespaceTokenizer),
    );
    Builder::new(AirphantConfig::default().with_total_bins(128))
        .build(&corpus, "index/log")?;
    let searcher = Searcher::open(store, "index/log")?;

    // ERROR AND disk
    let q = BoolQuery::and([BoolQuery::term("ERROR"), BoolQuery::term("disk")]);
    let r = searcher.search_boolean(&q)?;
    println!("ERROR AND disk -> {} hits:", r.hits.len());
    for h in &r.hits {
        println!("  {}", h.text);
    }
    assert_eq!(r.hits.len(), 2);

    // (ERROR AND network) OR WARN
    let q = BoolQuery::or([
        BoolQuery::and([BoolQuery::term("ERROR"), BoolQuery::term("network")]),
        BoolQuery::term("WARN"),
    ]);
    let r = searcher.search_boolean(&q)?;
    println!("(ERROR AND network) OR WARN -> {} hits:", r.hits.len());
    for h in &r.hits {
        println!("  {}", h.text);
    }
    assert_eq!(r.hits.len(), 3);

    // The per-term lookups were each a single concurrent batch; the final
    // filter guarantees zero false positives in what you see above.
    println!(
        "\nquery trace: {} requests, {} bytes, {} simulated",
        r.trace.requests(),
        r.trace.bytes(),
        r.trace.total()
    );
    Ok(())
}
