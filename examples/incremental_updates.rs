//! Incremental corpus updates via immutable segments — the first step past
//! the paper's read-only scope (§III-A defers frequent updates to future
//! work). Each day's logs become a new segment; queries fan out to all
//! segments concurrently and union the results.
//!
//! ```sh
//! cargo run --release --example incremental_updates
//! ```

use airphant::{AirphantConfig, SegmentManager};
use airphant_corpus::{spark_like, LogCorpusSpec};
use airphant_storage::{InMemoryStore, LatencyModel, ObjectStore, SimulatedCloudStore};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inner = Arc::new(InMemoryStore::new());
    let cloud: Arc<dyn ObjectStore> = Arc::new(SimulatedCloudStore::new(
        inner.clone(),
        LatencyModel::gcs_like(),
        5,
    ));
    let manager = SegmentManager::new(cloud.clone(), "index/logs");
    let config = AirphantConfig::default().with_total_bins(500);

    // Three days of logs arrive one batch at a time.
    for day in 0..3u64 {
        let corpus = spark_like(
            LogCorpusSpec::new(5_000, 100 + day),
            inner.clone(), // builds write through the raw store
            &format!("corpora/day-{day}"),
        );
        let (report, prefix) = manager.append(&corpus, &config)?;
        println!(
            "day {day}: appended segment {prefix} ({} docs, {} words, L={})",
            report.docs, report.words, report.layers
        );

        // Reopen after each append: new documents are immediately visible.
        let searcher = manager.open()?;
        let r = searcher.search("INFO", Some(10))?;
        println!(
            "  search(\"INFO\") over {} segment(s): {} hits in {} simulated",
            searcher.segment_count(),
            r.hits.len(),
            r.latency()
        );
    }

    // The fan-out preserves the single-round-trip property per segment:
    // three concurrent segment lookups cost ~one round-trip wait, not three.
    let searcher = manager.open()?;
    let r = searcher.search("INFO", Some(10))?;
    println!(
        "\nfinal: wait {} + download {} across {} segments ({} requests)",
        r.trace.wait(),
        r.trace.download(),
        searcher.segment_count(),
        r.trace.requests()
    );
    assert_eq!(searcher.segment_count(), 3);
    assert_eq!(r.hits.len(), 10);
    Ok(())
}
