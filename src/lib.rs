//! # airphant-suite
//!
//! Umbrella crate for the Airphant reproduction: re-exports the workspace
//! crates and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! See the repository README for the architecture overview and DESIGN.md
//! for the system inventory and per-experiment index.

pub use airphant;
pub use airphant_baselines;
pub use airphant_corpus;
pub use airphant_storage;
pub use iou_sketch;
